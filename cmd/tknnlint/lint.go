package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one lint finding. File is relative to the module root so
// output is stable regardless of the invocation directory. Suppressed
// findings (covered by a //lint:ignore directive) are retained rather than
// dropped: text output and the exit code ignore them, but -json reports
// them with "suppressed": true so CI artifacts record every accepted
// exception alongside the active findings.
type Diagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// ruleCatalog documents every rule for -rules output and DESIGN.md
// cross-reference. The invariants these protect are described in
// DESIGN.md §"Static analysis & CI gates".
var ruleCatalog = []struct{ Name, Doc string }{
	{ruleFloat32, "hot-path distance kernels (internal/vec, internal/theap, *Distance*/*Search* in internal/graph) must stay in float32: no float64 conversions, no math.* calls outside the allowlist"},
	{ruleRand, "library packages (root package, internal/...) must not call top-level math/rand functions; thread a seeded *rand.Rand for reproducible builds"},
	{ruleLock, "exported methods must hold the mutex that guards the fields they touch, and Lock/Unlock pairs that span branches must use defer"},
	{ruleErr, "cmd/, internal/server, internal/wal, internal/exec, internal/persist, and internal/client must not discard error returns from io/os/net/encoding calls"},
	{ruleCopylock, "values that contain sync or atomic synchronization primitives must not be copied: by-value receivers, parameters, and range variables carrying them are flagged"},
	{ruleGoroutine, "library goroutines must carry a completion signal (channel op, select, close, or WaitGroup Done/Add/Wait) in their body; a goroutine with none can never be joined and leaks"},
	{ruleInvariant, "calls into internal/invariant must sit inside an `if invariant.Enabled` guard so their arguments are never evaluated in default builds"},
	{ruleHotAlloc, "functions marked //tknn:hotpath, and everything statically reachable from them, must not allocate per query: no make/new, slice/map/&T{} literals, growing appends, local-map writes, string conversions, escaping closures, defer-in-loop, or interface boxing"},
	{ruleCtx, "query-path packages take context.Context as the first parameter, *Context functions accept one, functions holding a context never mint context.Background/TODO, and no struct stores a context"},
	{ruleScratch, "hot-path functions holding a *Scratch must draw per-query buffers from it rather than calling New*/Get* constructors"},
	{ruleGuarded, "every access to a field annotated //tknn:guardedBy(mu) must statically hold the named mutex, verified interprocedurally over the module call graph; writes under only RLock are flagged separately, and malformed or misplaced directives are errors"},
	{ruleLockOrder, "mutex acquisitions while another mutex is held form a module-wide lock-ordering graph; any cycle in it is a potential deadlock and is reported at a witness acquisition site"},
	{ruleTaint, "internal/persist and internal/wal must not let a value decoded from reader bytes (binary.Read, ByteOrder.Uint*, read-helper outputs) size a make, io.CopyN, or slice bound without an intervening bound check"},
}

// linter runs the rule set over a module and accumulates diagnostics.
type linter struct {
	mod   *Module
	diags []Diagnostic

	// mg caches the shared module call graph (callgraph.go); hot caches
	// the //tknn:hotpath transitive closure computed over it
	// (rule_hotpath.go).
	mg  *moduleGraph
	hot map[*types.Func]string

	// guards caches the //tknn:guardedBy annotation index plus the
	// interprocedural entry-held-lock sets (rule_guardedby.go); lockOrder
	// marks that the module-wide lock-order pass already ran
	// (rule_lockorder.go).
	guards       *guardIndex
	lockOrderRan bool
}

// Lint type-checks nothing itself — it walks the already-loaded module and
// applies every rule to each package accepted by match, then marks
// findings suppressed by //lint:ignore comments. Diagnostics come back
// sorted by file, line, column; use active to drop the suppressed ones.
func Lint(mod *Module, match func(*Package) bool) []Diagnostic {
	l := &linter{mod: mod}
	for _, pkg := range mod.Pkgs {
		if match != nil && !match(pkg) {
			continue
		}
		l.checkFloat32Kernel(pkg)
		l.checkGlobalRand(pkg)
		l.checkLockDiscipline(pkg)
		l.checkUncheckedErrors(pkg)
		l.checkCopylock(pkg)
		l.checkGoroutineLeak(pkg)
		l.checkInvariantGate(pkg)
		l.checkHotpathAlloc(pkg)
		l.checkCtxDiscipline(pkg)
		l.checkScratchReuse(pkg)
		l.checkGuardedBy(pkg)
		l.checkLockOrder(pkg)
		l.checkUntrustedSize(pkg)
	}
	diags := markSuppressed(mod, l.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// report records a finding at pos.
func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	p := l.relPosition(pos)
	l.diags = append(l.diags, Diagnostic{
		File: p.Filename,
		Line: p.Line,
		Col:  p.Column,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// relPosition resolves pos with the filename made module-relative.
func (l *linter) relPosition(pos token.Pos) token.Position {
	p := l.mod.Fset.Position(pos)
	if rel, err := filepath.Rel(l.mod.Root, p.Filename); err == nil {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

// active filters diags down to the findings not covered by a
// //lint:ignore directive — the set that drives text output and the exit
// code.
func active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// ignoreMap indexes //lint:ignore directives: ignoreMap[file][line] holds
// the rules ignored at that line.
type ignoreMap map[string]map[int]map[string]bool

// covers reports whether rule is ignored at file:line (same line or the
// line directly above, matching markSuppressed).
func (m ignoreMap) covers(file string, line int, rule string) bool {
	lines := m[file]
	return lines != nil && (lines[line][rule] || lines[line-1][rule])
}

// buildIgnores collects every //lint:ignore directive in the module.
func buildIgnores(mod *Module) ignoreMap {
	ignores := ignoreMap{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rules, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					p := mod.Fset.Position(c.Pos())
					file := p.Filename
					if rel, err := filepath.Rel(mod.Root, file); err == nil {
						file = filepath.ToSlash(rel)
					}
					if ignores[file] == nil {
						ignores[file] = map[int]map[string]bool{}
					}
					if ignores[file][p.Line] == nil {
						ignores[file][p.Line] = map[string]bool{}
					}
					for _, r := range rules {
						ignores[file][p.Line][r] = true
					}
				}
			}
		}
	}
	return ignores
}

// markSuppressed flags diagnostics covered by a `//lint:ignore <rules>
// [reason]` comment on the same line or the line directly above. <rules>
// is a comma-separated list of rule names. Suppressed findings stay in the
// slice so -json can report them.
func markSuppressed(mod *Module, diags []Diagnostic) []Diagnostic {
	ignores := buildIgnores(mod)
	for i, d := range diags {
		lines := ignores[d.File]
		if lines != nil && (lines[d.Line][d.Rule] || lines[d.Line-1][d.Rule]) {
			diags[i].Suppressed = true
		}
	}
	return diags
}

// parseIgnore recognizes `//lint:ignore rule1,rule2 reason...` and returns
// the named rules.
func parseIgnore(comment string) ([]string, bool) {
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return nil, false // /* */ comments don't carry directives
	}
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "lint:ignore")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		// The reason is mandatory: an ignore with no justification does
		// not suppress anything, so the finding stays visible.
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// matcher translates command-line package patterns into a package filter.
// Supported forms, mirroring the subset of cmd/go syntax the Makefile and
// CI use: "./..." (everything), "./dir/..." (subtree), "./dir" or "dir"
// (exact package).
func matcher(patterns []string) (func(*Package) bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type pat struct {
		rel    string
		substr bool
	}
	var pats []pat
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		p = strings.TrimPrefix(p, "./")
		if p == "..." || p == "" {
			return func(*Package) bool { return true }, nil
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			pats = append(pats, pat{rel: rest, substr: true})
			continue
		}
		pats = append(pats, pat{rel: strings.TrimSuffix(p, "/")})
	}
	return func(pkg *Package) bool {
		for _, p := range pats {
			if pkg.Rel == p.rel {
				return true
			}
			if p.substr && strings.HasPrefix(pkg.Rel, p.rel+"/") {
				return true
			}
		}
		return false
	}, nil
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
