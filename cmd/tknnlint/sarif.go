package main

// Minimal SARIF 2.1.0 output: enough structure for code-scanning UIs
// (one run, one tool, physical locations, in-source suppressions) and
// nothing speculative. The shape mirrors the -json output: every
// diagnostic is a result, suppressed ones carry a suppression object so
// the artifact records accepted exceptions alongside active findings.

type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// sarifReport converts the full diagnostic list (suppressed findings
// included) into a SARIF document.
func sarifReport(diags []Diagnostic) sarifDoc {
	rules := make([]sarifRule, 0, len(ruleCatalog))
	for _, r := range ruleCatalog {
		rules = append(rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		if d.Suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, res)
	}
	return sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tknnlint", Rules: rules}},
			Results: results,
		}},
	}
}
