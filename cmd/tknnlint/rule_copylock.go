package main

import (
	"go/ast"
	"go/types"
)

// Rule copylock.
//
// A sync.Mutex copied by value is two independent mutexes that the code
// believes are one: the copy starts unlocked no matter what the original
// holds, so the critical section it "guards" races silently. The same is
// true of every sync and sync/atomic value type. `go vet` flags copies at
// assignment and call sites; this rule closes the declaration-side gaps
// the repository has actually been bitten by in review — a method on a
// lock-bearing struct declared with a value receiver (every call copies),
// a parameter that takes the struct by value, and a range variable that
// copies lock-bearing elements out of a slice or array each iteration.
//
// The check is transitive: a struct is lock-bearing when any field, at
// any depth, is one of the sync primitives or an atomic value type. Types
// reached only through a pointer, slice, map, channel, or interface are
// fine — those share the original.
const ruleCopylock = "copylock"

func (l *linter) checkCopylock(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				l.copylockFields(pkg, fd.Recv, "receiver of "+fd.Name.Name)
			}
			if fd.Type.Params != nil {
				l.copylockFields(pkg, fd.Type.Params, "parameter of "+fd.Name.Name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				id, ok := e.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if lock := lockInType(obj.Type()); lock != "" {
					l.report(id.Pos(), ruleCopylock,
						"range variable %s copies %s each iteration; range over indices (or a slice of pointers) instead", id.Name, lock)
				}
			}
			return true
		})
	}
}

// copylockFields reports every by-value field of a receiver or parameter
// list whose type transitively contains a synchronization primitive.
func (l *linter) copylockFields(pkg *Package, fields *ast.FieldList, what string) {
	for _, field := range fields.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		lock := lockInType(tv.Type)
		if lock == "" {
			continue
		}
		names := "_"
		if len(field.Names) > 0 {
			names = field.Names[0].Name
		}
		l.report(field.Pos(), ruleCopylock,
			"%s %s is passed by value but contains %s; take a pointer so the primitive is shared, not copied", what, names, lock)
	}
}

// lockInType returns the name of the first synchronization primitive the
// type contains by value ("" when it contains none). Pointers, slices,
// maps, channels, and interfaces stop the walk: what they reference is
// shared, not copied.
func lockInType(t types.Type) string {
	return lockInTypeSeen(t, map[types.Type]bool{})
}

func lockInTypeSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if name := syncPrimitive(named); name != "" {
			return name
		}
		return lockInTypeSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockInTypeSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInTypeSeen(u.Elem(), seen)
	}
	return ""
}

// syncPrimitive names the sync / sync/atomic value types that must never
// be copied once used.
func syncPrimitive(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
			return "sync." + obj.Name()
		}
	case "sync/atomic":
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
			return "atomic." + obj.Name()
		}
	}
	return ""
}
