package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule invariant-gate.
//
// internal/invariant and internal/fault compile to no-ops in default
// builds, but only the call is free — its arguments are not.
// `invariant.NoError(ix.Validate(), ...)` at top level runs the full O(n)
// validator in every production build even though the result is
// discarded, and an unguarded `fault.Hit("wal.write")` pays a registry
// lookup on every WAL append even with injection compiled out. The
// repository's contract is therefore that every call into a gated package
// sits inside an
//
//	if invariant.Enabled { ... }   (resp. if fault.Enabled { ... })
//
// block: Enabled is a constant, so the whole guarded body — argument
// evaluation included — is dead-code-eliminated when the package's build
// tag is off. This rule flags gated-package calls outside a guard that
// reads that same package's Enabled constant.
//
// The guard test is positional: a call is gated when it sits inside the
// body of any if statement whose condition mentions the callee package's
// Enabled constant. The gated packages themselves are exempt (their
// helpers branch on Enabled internally — that is where the fast path
// lives), and files tagged tknn_invariants/tknn_fault never reach the
// rule because the loader skips files whose build constraints
// default-build excludes.
const ruleInvariant = "invariant-gate"

// gatedPkgSuffixes are the module packages whose call sites must sit
// behind their own `Enabled` constant.
var gatedPkgSuffixes = []string{"internal/invariant", "internal/fault"}

func (l *linter) checkInvariantGate(pkg *Package) {
	for _, s := range gatedPkgSuffixes {
		if pkg.Rel == s {
			return
		}
	}
	for _, f := range pkg.Files {
		// Guarded regions: bodies of ifs whose condition reads a gated
		// package's Enabled, keyed by that package's import path so an
		// `if fault.Enabled` guard never vouches for an invariant call.
		type span struct {
			lo, hi token.Pos
			path   string
		}
		var guarded []span
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			for _, path := range condEnabledPaths(pkg, ifs.Cond) {
				guarded = append(guarded, span{ifs.Body.Pos(), ifs.Body.End(), path})
			}
			return true
		})
		inGuard := func(p token.Pos, path string) bool {
			for _, s := range guarded {
				if s.path == path && p >= s.lo && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, path := gatedPkgIdent(pkg, sel.X)
			if pkgName == "" {
				return true
			}
			// Only function calls: conversions like invariant.Violation(x)
			// carry no hidden cost.
			if _, ok := pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
				return true
			}
			if inGuard(call.Pos(), path) {
				return true
			}
			l.report(call.Pos(), ruleInvariant,
				"%s.%s call outside an `if %s.Enabled` guard: its arguments are evaluated even in default builds where the check is a no-op",
				pkgName, sel.Sel.Name, pkgName)
			return true
		})
	}
}

// condReadsEnabled reports whether the condition expression mentions any
// gated package's Enabled constant (the hot-path rules treat such bodies
// as dead in default builds).
func condReadsEnabled(pkg *Package, cond ast.Expr) bool {
	return len(condEnabledPaths(pkg, cond)) > 0
}

// condEnabledPaths returns the import paths of the gated packages whose
// Enabled constant the condition reads.
func condEnabledPaths(pkg *Package, cond ast.Expr) []string {
	var paths []string
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" {
			return true
		}
		if name, path := gatedPkgIdent(pkg, sel.X); name != "" {
			paths = append(paths, path)
		}
		return true
	})
	return paths
}

// gatedPkgIdent resolves e to an imported package named by a gated-package
// path, returning its local name and import path ("" when not gated).
func gatedPkgIdent(pkg *Package, e ast.Expr) (string, string) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	path := pn.Imported().Path()
	for _, s := range gatedPkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return id.Name, path
		}
	}
	return "", ""
}
