package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule invariant-gate.
//
// internal/invariant compiles to no-ops in default builds, but only the
// call is free — its arguments are not. `invariant.NoError(ix.Validate(),
// ...)` at top level runs the full O(n) validator in every production
// build even though the result is discarded. The repository's contract is
// therefore that every call into the invariant package sits inside an
//
//	if invariant.Enabled { ... }
//
// block: Enabled is a constant, so the whole guarded body — argument
// evaluation included — is dead-code-eliminated when the tknn_invariants
// tag is off. This rule flags invariant-package calls outside such a
// guard.
//
// The guard test is positional: a call is gated when it sits inside the
// body of any if statement whose condition mentions the package's Enabled
// constant. The invariant package itself is exempt (its helpers branch on
// Enabled internally — that is where the fast path lives), and files
// tagged tknn_invariants never reach the rule because the loader skips
// files whose build constraints default-build excludes.
const ruleInvariant = "invariant-gate"

func (l *linter) checkInvariantGate(pkg *Package) {
	if pkg.Rel == "internal/invariant" {
		return
	}
	for _, f := range pkg.Files {
		// Guarded regions: bodies of ifs whose condition reads Enabled.
		type span struct{ lo, hi token.Pos }
		var guarded []span
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if condReadsEnabled(pkg, ifs.Cond) {
				guarded = append(guarded, span{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		inGuard := func(p token.Pos) bool {
			for _, s := range guarded {
				if p >= s.lo && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName := invariantPkgIdent(pkg, sel.X)
			if pkgName == "" {
				return true
			}
			// Only function calls: conversions like invariant.Violation(x)
			// carry no hidden cost.
			if _, ok := pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
				return true
			}
			if inGuard(call.Pos()) {
				return true
			}
			l.report(call.Pos(), ruleInvariant,
				"%s.%s call outside an `if %s.Enabled` guard: its arguments are evaluated even in default builds where the check is a no-op",
				pkgName, sel.Sel.Name, pkgName)
			return true
		})
	}
}

// condReadsEnabled reports whether the condition expression mentions the
// invariant package's Enabled constant.
func condReadsEnabled(pkg *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" {
			return true
		}
		if invariantPkgIdent(pkg, sel.X) != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// invariantPkgIdent resolves e to an imported package named by an
// internal/invariant path and returns its local name ("" otherwise).
func invariantPkgIdent(pkg *Package, e ast.Expr) string {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	path := pn.Imported().Path()
	if path == "internal/invariant" || strings.HasSuffix(path, "/internal/invariant") {
		return id.Name
	}
	return ""
}
