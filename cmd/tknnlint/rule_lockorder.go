package main

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule lock-order.
//
// Deadlocks need no data race: two goroutines acquiring the same two
// mutexes in opposite orders is enough, and the race detector is blind
// to it. This rule records every acquire-while-holding pair into one
// module-wide lock-ordering graph — lock A was held when lock B was
// acquired ⇒ edge A→B — and reports every cycle as a potential
// deadlock.
//
// Held sets are the may-variant of the guarded-by machinery: a
// function's may-entry set is the union over its static call sites of
// what the caller may hold there, propagated to a fixpoint, so an
// acquire buried two calls below a held lock still contributes its
// edge. Locks are type-level objects (Index.mu, Manager.cpMu, a
// package-level var); self-edges (A while A) are dropped — at type
// level they are almost always two different instances, and real
// re-entrancy is lock-discipline's problem. Closures contribute only
// the edges visible inside their own bodies.
//
// One finding is reported per cycle, at a deterministic witness: the
// acquisition site of the alphabetically-least edge in the cycle.
// Suppress with `//lint:ignore lock-order reason` at that site after
// establishing the real runtime order. The -lockgraph flag prints the
// whole graph in DOT for DESIGN.md.
const ruleLockOrder = "lock-order"

// lockEdgeKey is one ordered pair in the lock graph.
type lockEdgeKey struct{ from, to *types.Var }

// lockOrderGraph is the module's acquire-while-holding graph.
type lockOrderGraph struct {
	nodes   []*types.Var // every lock ever acquired, deterministic order
	edges   map[lockEdgeKey]token.Pos
	nodeSet map[*types.Var]bool
}

// buildLockGraph runs the may-held propagation and collects every
// acquire-while-holding edge with its first witness position.
func (l *linter) buildLockGraph() *lockOrderGraph {
	mg := l.graph()
	gi := l.guardIndex()
	callers := mg.callersOf(func(e callEdge) bool { return !e.inClosure })

	// May-entry fixpoint: union over call sites, monotonically growing.
	may := map[*types.Func]heldSet{}
	for _, fn := range mg.declOrder {
		may[fn] = heldSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range mg.declOrder {
			acc := may[fn]
			for _, site := range callers[fn] {
				contrib := heldAtPos(gi.bodyEvts[site.caller], site.pos).union(may[site.caller])
				acc = acc.union(contrib)
			}
			if !acc.equal(may[fn]) {
				may[fn] = acc
				changed = true
			}
		}
	}

	g := &lockOrderGraph{
		edges:   map[lockEdgeKey]token.Pos{},
		nodeSet: map[*types.Var]bool{},
	}
	addNode := func(mu *types.Var) {
		if !g.nodeSet[mu] {
			g.nodeSet[mu] = true
			g.nodes = append(g.nodes, mu)
		}
	}
	collect := func(evts []lockEvt, entry heldSet) {
		for _, e := range evts {
			if !e.acquire {
				continue
			}
			addNode(e.mu)
			held := entry.union(heldAtPos(evts, e.pos))
			for from := range held {
				if from == e.mu {
					continue // type-level self-edge: different instances
				}
				addNode(from)
				key := lockEdgeKey{from, e.mu}
				if _, seen := g.edges[key]; !seen {
					g.edges[key] = e.pos
				}
			}
		}
	}
	for _, fn := range mg.declOrder {
		site := mg.decls[fn]
		collect(gi.bodyEvts[fn], may[fn])
		// Closures: own events, no inherited entry set (funcUnits returns
		// the body first, then every nested literal).
		for _, unit := range funcUnits(site.decl.Body)[1:] {
			collect(unitLockEvents(site.pkg, unit), heldSet{})
		}
	}
	return g
}

// checkLockOrder runs the module-wide cycle detection exactly once per
// lint run (the first matched package triggers it).
func (l *linter) checkLockOrder(pkg *Package) {
	if l.lockOrderRan {
		return
	}
	l.lockOrderRan = true
	g := l.buildLockGraph()
	for _, scc := range g.cycles() {
		names := make([]string, len(scc))
		for i, mu := range scc {
			names[i] = lockDisplayName(mu)
		}
		sort.Strings(names)
		witness, pos := g.witnessEdge(scc)
		l.report(pos, ruleLockOrder,
			"potential deadlock: %s is acquired while %s is held, completing a lock-order cycle [%s]",
			lockDisplayName(witness.to), lockDisplayName(witness.from), strings.Join(names, ", "))
	}
}

// cycles returns the strongly connected components with more than one
// lock, in deterministic node order.
func (g *lockOrderGraph) cycles() [][]*types.Var {
	adj := map[*types.Var][]*types.Var{}
	for key := range g.edges {
		adj[key.from] = append(adj[key.from], key.to)
	}
	for _, succs := range adj {
		sort.Slice(succs, func(i, j int) bool {
			return lockDisplayName(succs[i]) < lockDisplayName(succs[j])
		})
	}

	// Tarjan over g.nodes in insertion order.
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var out [][]*types.Var
	next := 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				out = append(out, scc)
			}
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// witnessEdge picks the cycle's deterministic report site: the
// alphabetically-least intra-SCC edge.
func (g *lockOrderGraph) witnessEdge(scc []*types.Var) (lockEdgeKey, token.Pos) {
	in := map[*types.Var]bool{}
	for _, mu := range scc {
		in[mu] = true
	}
	var best lockEdgeKey
	var bestPos token.Pos
	found := false
	for key, pos := range g.edges {
		if !in[key.from] || !in[key.to] {
			continue
		}
		if !found || edgeLess(key, best) {
			best, bestPos, found = key, pos, true
		}
	}
	return best, bestPos
}

func edgeLess(a, b lockEdgeKey) bool {
	af, bf := lockDisplayName(a.from), lockDisplayName(b.from)
	if af != bf {
		return af < bf
	}
	return lockDisplayName(a.to) < lockDisplayName(b.to)
}

// LockGraphDOT renders the module's lock-ordering graph in DOT, edges
// labeled with their witness acquisition site. Deterministic output:
// nodes and edges sorted by display name.
func LockGraphDOT(mod *Module) string {
	l := &linter{mod: mod}
	g := l.buildLockGraph()

	names := make([]string, 0, len(g.nodes))
	for _, mu := range g.nodes {
		names = append(names, lockDisplayName(mu))
	}
	sort.Strings(names)

	type dotEdge struct{ from, to, label string }
	var edges []dotEdge
	for key, pos := range g.edges {
		p := l.relPosition(pos)
		edges = append(edges, dotEdge{
			from:  lockDisplayName(key.from),
			to:    lockDisplayName(key.to),
			label: fmt.Sprintf("%s:%d", p.Filename, p.Line),
		})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.from, e.to, e.label)
	}
	b.WriteString("}\n")
	return b.String()
}
