package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rules hotpath-alloc and scratch-reuse.
//
// The query hot path — everything between a search entry point and its
// merged result — is supposed to perform zero steady-state heap
// allocations: per-query state lives in reusable Scratch buffers, and the
// allocation gate (internal/bench, `go test -run AllocGate`) measures
// exactly that. Allocation bugs regress silently: the code stays correct,
// only the profile rots. These rules make the property structural.
//
// A function is *hot* when its declaration carries the
//
//	//tknn:hotpath
//
// directive, or when it is statically reachable from a hot function
// through module-internal calls. Reachability is computed over the whole
// module, skipping the gated packages internal/invariant and
// internal/fault (tag-build-only code) and call sites inside
// `if invariant.Enabled` / `if fault.Enabled` guards (dead in default
// builds).
//
// hotpath-alloc flags, inside hot functions:
//
//   - make and new
//   - slice, map, and address-taken (&T{...}) composite literals (plain
//     struct values are stack values and stay exempt)
//   - appends that grow a function-local slice from scratch — appends
//     rooted at a selector (amortized reused state), a parameter
//     (caller-owned buffer), a pointer deref, or a local resliced from
//     existing storage (x := y[:0]) are exempt
//   - map writes rooted at a plain local ident (selector- and
//     parameter-rooted maps are reused state)
//   - string<->[]byte/[]rune conversions
//   - function literals that outlive the statement (assigned, stored,
//     returned, deferred, or launched); literals in call-argument
//     position are exempt
//   - defer inside a loop (one deferred frame per iteration)
//   - interface boxing: a non-pointer-shaped concrete value passed to an
//     interface-typed parameter
//
// Cold-start growth (a buffer that allocates once and is retained) is the
// intended exception: suppress the site with `//lint:ignore hotpath-alloc
// reason`.
//
// scratch-reuse flags constructor calls (New*, GetScratch) inside hot
// functions that already hold a scratch value (a parameter or receiver
// whose type name contains "Scratch"): per-query state must come from the
// scratch that was passed in, not be built fresh beside it.
const (
	ruleHotAlloc = "hotpath-alloc"
	ruleScratch  = "scratch-reuse"
)

// hotDirective is the comment that marks a hot-path root.
const hotDirective = "//tknn:hotpath"

// declSite locates one function declaration in the module.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// gatedPkg reports whether rel is a tag-build-only package whose code is
// off the hot path by construction.
func gatedPkg(rel string) bool {
	return rel == "internal/invariant" || rel == "internal/fault"
}

// hotSet lazily computes the module's hot functions: the transitive
// static-call closure of every //tknn:hotpath root, walked over the
// shared module call graph (callgraph.go). The map value is the root the
// function was first reached from ("" for a root itself).
func (l *linter) hotSet() map[*types.Func]string {
	if l.hot != nil {
		return l.hot
	}
	l.hot = map[*types.Func]string{}
	mg := l.graph()

	var roots []*types.Func
	for _, fn := range mg.declOrder {
		site := mg.decls[fn]
		if gatedPkg(site.pkg.Rel) {
			continue // gated debug/chaos code is off the hot path by construction
		}
		if hasHotDirective(site.decl.Doc) {
			roots = append(roots, fn)
		}
	}

	// A //lint:ignore hotpath-alloc on a call site is an accepted
	// exception for the whole call: hotness does not propagate through it,
	// so a suppressed cold-start constructor's interior is not flagged.
	ignores := buildIgnores(l.mod)

	queue := make([]*types.Func, 0, len(roots))
	for _, fn := range roots {
		l.hot[fn] = hotName(fn)
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		origin := l.hot[fn]
		for _, e := range mg.edges[fn] {
			if e.gated {
				continue // dead in default builds; never hot
			}
			if p := l.relPosition(e.pos); ignores.covers(p.Filename, p.Line, ruleHotAlloc) {
				continue
			}
			if gatedPkg(mg.decls[e.callee].pkg.Rel) {
				continue
			}
			if _, seen := l.hot[e.callee]; seen {
				continue
			}
			l.hot[e.callee] = origin
			queue = append(queue, e.callee)
		}
	}
	return l.hot
}

// hotName renders a function for "hot via ..." messages.
func hotName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// hasHotDirective reports whether the doc group carries //tknn:hotpath.
func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotDirective {
			return true
		}
	}
	return false
}

// span is a position range.
type span struct{ lo, hi token.Pos }

func posInSpans(p token.Pos, spans []span) bool {
	for _, s := range spans {
		if p >= s.lo && p < s.hi {
			return true
		}
	}
	return false
}

// guardedSpans returns the body spans of gated-Enabled if statements
// (`if invariant.Enabled`, `if fault.Enabled`)
// inside decl: code there is dead-code-eliminated in default builds, so
// hot-path rules skip it.
func guardedSpans(pkg *Package, decl *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condReadsEnabled(pkg, ifs.Cond) {
			out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// checkHotpathAlloc applies the allocation rules to every hot function
// declared in pkg.
func (l *linter) checkHotpathAlloc(pkg *Package) {
	hot := l.hotSet()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if origin, isHot := hot[fn]; isHot {
				l.checkHotBody(pkg, fd, origin)
			}
		}
	}
}

// checkHotBody walks one hot function's body for allocation sites.
func (l *linter) checkHotBody(pkg *Package, decl *ast.FuncDecl, origin string) {
	guards := guardedSpans(pkg, decl)
	params := paramObjects(pkg, decl)
	fresh, resliced := localSliceClasses(pkg, decl)

	flag := func(pos token.Pos, format string, args ...any) {
		if posInSpans(pos, guards) {
			return
		}
		msg := "in hot path (via " + origin + "): " + format
		l.report(pos, ruleHotAlloc, msg, args...)
	}

	// parents[node] is the enclosing node, for context-sensitive checks
	// (FuncLit position, &T{} detection, defer-in-loop).
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			l.checkHotCall(pkg, e, flag)
		case *ast.CompositeLit:
			t := pkg.Info.Types[e].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				flag(e.Pos(), "slice literal allocates per query; reuse scratch-backed storage")
			case *types.Map:
				flag(e.Pos(), "map literal allocates per query; reuse scratch-backed storage")
			case *types.Struct:
				if u, ok := parents[ast.Node(e)].(*ast.UnaryExpr); ok && u.Op == token.AND {
					flag(u.Pos(), "&%s{...} escapes to the heap; keep the value in scratch state", typeName(t))
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				ix, ok := unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := pkg.Info.Types[ix.X].Type
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				root, base := rootIdent(ix.X)
				if !base || root == nil || params[objectOf(pkg, root)] {
					continue // selector/deref/param-rooted: reused state
				}
				flag(ix.Pos(), "write into function-local map %s may allocate; hoist the map into scratch state", root.Name)
			}
		case *ast.FuncLit:
			parent := parents[ast.Node(e)]
			if call, ok := parent.(*ast.CallExpr); ok {
				if call.Fun == e {
					break // immediately invoked: no closure outlives the call
				}
				isArg := false
				for _, a := range call.Args {
					if a == e {
						isArg = true
						break
					}
				}
				if isArg {
					if _, isGo := parents[ast.Node(call)].(*ast.GoStmt); !isGo {
						break // call-argument position: scoped to the call
					}
				}
			}
			flag(e.Pos(), "function literal outlives its statement and its captures escape; use a method value on scratch state instead")
			return false // inner body is the closure's problem only if it is itself hot
		case *ast.DeferStmt:
			for p := parents[ast.Node(e)]; p != nil; p = parents[p] {
				switch p.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					flag(e.Pos(), "defer inside a loop allocates one deferred frame per iteration; restructure the loop body")
				case *ast.FuncLit:
					p = nil
				}
				if p == nil {
					break
				}
			}
		}
		return true
	})

	// Growing appends and interface boxing need the call list with types.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(pkg, call, "append") && len(call.Args) > 0 {
			root, base := rootIdent(call.Args[0])
			if base && root != nil {
				obj := objectOf(pkg, root)
				if obj != nil && !params[obj] && !resliced[obj] && fresh[obj] {
					flag(call.Pos(), "append grows function-local slice %s from scratch each query; carve it from scratch storage instead", root.Name)
				}
			}
		}
		l.checkBoxing(pkg, call, flag)
		return true
	})
}

// checkHotCall flags make/new and string conversions.
func (l *linter) checkHotCall(pkg *Package, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	if isBuiltinCall(pkg, call, "make") {
		flag(call.Pos(), "make allocates per query; grow a retained buffer once and reslice it")
		return
	}
	if isBuiltinCall(pkg, call, "new") {
		flag(call.Pos(), "new allocates per query; keep the value in scratch state")
		return
	}
	// Conversions between string and byte/rune slices copy their payload.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		argT := pkg.Info.Types[call.Args[0]].Type
		if argT == nil {
			return
		}
		src := argT.Underlying()
		if isString(dst) && isByteOrRuneSlice(src) {
			flag(call.Pos(), "[]byte/[]rune-to-string conversion copies per query; keep the data in one representation")
		}
		if isByteOrRuneSlice(dst) && isString(src) {
			flag(call.Pos(), "string-to-slice conversion copies per query; keep the data in one representation")
		}
	}
}

// checkBoxing flags concrete non-pointer-shaped values passed to
// interface-typed parameters: each such pass heap-allocates the value.
func (l *linter) checkBoxing(pkg *Package, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, handled elsewhere
	}
	sig := callSignature(pkg, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // spread of an existing slice: no per-element boxing here
			}
			st, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramT = st.Elem()
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pkg.Info.Types[arg]
		if !ok || argTV.Type == nil || argTV.Value != nil {
			continue // constants may be interned; out of scope
		}
		at := argTV.Type
		if at == types.Typ[types.UntypedNil] || isPointerShaped(at) {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue // interface-to-interface: no new box
		}
		flag(arg.Pos(), "%s value boxed into interface parameter allocates per query; pass a pointer or restructure the call", typeName(at))
	}
}

// checkScratchReuse flags constructor calls inside hot functions that
// already hold a scratch value.
func (l *linter) checkScratchReuse(pkg *Package) {
	hot := l.hotSet()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			origin, isHot := hot[fn]
			if !isHot || !holdsScratch(fd, pkg) {
				continue
			}
			guards := guardedSpans(pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if posInSpans(call.Pos(), guards) {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee == nil {
					return true
				}
				name := callee.Name()
				if !strings.HasPrefix(name, "New") && !strings.HasPrefix(name, "Get") {
					return true
				}
				l.report(call.Pos(), ruleScratch,
					"hot function (via %s) holds a scratch but builds fresh per-query state with %s; take the buffer from the scratch instead",
					origin, name)
				return true
			})
		}
	}
}

// holdsScratch reports whether the declaration receives a scratch value:
// a receiver or parameter whose (possibly pointed-to) named type contains
// "Scratch".
func holdsScratch(decl *ast.FuncDecl, pkg *Package) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			t := pkg.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && strings.Contains(named.Obj().Name(), "Scratch") {
				return true
			}
		}
		return false
	}
	return check(decl.Recv) || check(decl.Type.Params)
}

// --- shared helpers ---

// paramObjects collects the receiver's and parameters' objects.
func paramObjects(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	return out
}

// localSliceClasses classifies the function's local variables by how they
// were declared: fresh (var x []T, x := make(...), x := nil-ish — growing
// them allocates) versus resliced (x := y[:0] and friends — growth reuses
// existing backing until the high-water mark).
func localSliceClasses(pkg *Package, decl *ast.FuncDecl) (fresh, resliced map[types.Object]bool) {
	fresh = map[types.Object]bool{}
	resliced = map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					continue
				}
				switch unparen(s.Rhs[i]).(type) {
				case *ast.SliceExpr:
					resliced[obj] = true
				default:
					fresh[obj] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh, resliced
}

// rootIdent unwraps index/slice expressions to the base identifier.
// base is false when the root is a selector, deref, call, or anything
// else that signals reused or caller-owned state.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// objectOf resolves an identifier to its object, through either a use or a
// definition.
func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// callSignature resolves the call's signature for static calls, method
// calls, and calls through function-typed values alike.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether boxing t into an interface stores the
// value directly (no heap allocation): pointers, channels, maps, funcs,
// and unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// typeName renders a type compactly for messages.
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
