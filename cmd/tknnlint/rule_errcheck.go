package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rule unchecked-errors.
//
// The daemon and CLI sit at the I/O boundary: a swallowed os.Rename error
// silently drops a persisted index, a swallowed Encode error truncates an
// HTTP response mid-body. In cmd/ and internal/server, a call whose last
// result is an error and whose callee lives in io, os, net, or encoding
// (or any of their subpackages) must not appear as a bare statement.
// Intentional discards stay visible as `_ = f.Close()`, and `defer
// f.Close()` on read paths is accepted as idiomatic. Library packages are
// out of scope — their error plumbing is covered by ordinary review and
// tests, and the brute "flag everything" version of this rule buries real
// findings in noise.
const ruleErr = "unchecked-errors"

// errPkgPrefixes are the package paths (and path prefixes) whose error
// returns must be checked.
var errPkgPrefixes = []string{"io", "os", "net", "encoding"}

func uncheckedErrScope(rel string) bool {
	// internal/wal is in scope because a dropped fsync or close error
	// there silently voids the durability guarantee. internal/exec is in
	// scope because the shared query executor sits under every index's
	// search path: an error swallowed there silently degrades answers for
	// all of them. internal/persist is the snapshot codec — a swallowed
	// write or close error there ships a torn index file — and
	// internal/client is the other end of the daemon's HTTP boundary,
	// where a dropped body-close leaks connections under load.
	// internal/sq is in scope because block codes flow into the persist
	// codec: a swallowed encode error there ships a file whose compressed
	// sections silently disagree with the vectors they stand for.
	// internal/fault is in scope because the injection registry is what
	// the chaos and recovery gates trust: a swallowed error in rule
	// parsing or installation would make a fault schedule silently
	// weaker than the test believes it is. internal/blockcache is in
	// scope because its loader runs segment-file I/O on the query path:
	// a swallowed load error would turn a disk fault into silently
	// missing results instead of a Partial outcome.
	return strings.HasPrefix(rel, "cmd/") || rel == "internal/server" ||
		rel == "internal/wal" || rel == "internal/exec" ||
		rel == "internal/persist" || rel == "internal/client" ||
		rel == "internal/sq" || rel == "internal/fault" ||
		rel == "internal/blockcache"
}

func watchedErrPkg(path string) bool {
	for _, p := range errPkgPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (l *linter) checkUncheckedErrors(pkg *Package) {
	if !uncheckedErrScope(pkg.Rel) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !watchedErrPkg(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !types.Identical(last, types.Universe.Lookup("error").Type()) {
				return true
			}
			l.report(call.Pos(), ruleErr,
				"error returned by %s.%s is discarded; handle it or make the discard explicit with `_ =`",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

// calleeFunc resolves the called function or method, when statically
// known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
