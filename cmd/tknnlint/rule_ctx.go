package main

import (
	"go/ast"
	"go/types"
)

// Rule ctx-discipline.
//
// The query path propagates cancellation through context.Context: a
// deadline set at the server must reach every scan and traversal, or the
// executor's partial-results contract silently degrades to "runs to
// completion". The discipline, enforced in the query-path packages
// (internal/{core,graph,theap,vec,exec,bsbf,sf,ivf}):
//
//   - a function that takes a context takes it as its first parameter
//     (after the receiver), per the context package's own convention;
//   - a function whose name ends in "Context" actually accepts one —
//     the suffix is this repository's marker for the cancellable variant;
//   - a function that was handed a context never manufactures a fresh
//     root with context.Background or context.TODO — that drops the
//     caller's deadline on the floor;
//   - no struct stores a context.Context field: contexts are call-scoped,
//     and a stored context outlives the call that created it (the
//     contract context.Context documents itself).
const ruleCtx = "ctx-discipline"

// ctxScope is the rule's package scope: the layers a query's context must
// traverse.
func ctxScope(rel string) bool {
	switch rel {
	case "internal/core", "internal/graph", "internal/theap", "internal/vec",
		"internal/exec", "internal/bsbf", "internal/sf", "internal/ivf":
		return true
	}
	return false
}

func (l *linter) checkCtxDiscipline(pkg *Package) {
	if !ctxScope(pkg.Rel) {
		return
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				l.checkCtxFunc(pkg, decl)
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						t := pkg.Info.Types[field.Type].Type
						if t != nil && isContextType(t) {
							l.report(field.Pos(), ruleCtx,
								"struct %s stores a context.Context; contexts are call-scoped — pass one per call instead",
								ts.Name.Name)
						}
					}
				}
			}
		}
	}
}

func (l *linter) checkCtxFunc(pkg *Package, decl *ast.FuncDecl) {
	ctxIndex := -1
	idx := 0
	for _, field := range decl.Type.Params.List {
		t := pkg.Info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && ctxIndex < 0 {
			ctxIndex = idx
		}
		idx += n
	}

	name := decl.Name.Name
	if ctxIndex > 0 {
		l.report(decl.Pos(), ruleCtx,
			"%s takes context.Context as parameter %d; the context goes first, before the data it scopes",
			name, ctxIndex+1)
	}
	if ctxIndex < 0 && len(name) > len("Context") && name[len(name)-len("Context"):] == "Context" {
		l.report(decl.Pos(), ruleCtx,
			"%s is named *Context but accepts no context.Context; take one or rename it",
			name)
	}

	if ctxIndex < 0 || decl.Body == nil {
		return
	}
	// The function was handed a context: flag fresh roots minted inside.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			l.report(call.Pos(), ruleCtx,
				"context.%s inside a function that already has a context drops the caller's cancellation; thread the parameter through",
				fn.Name())
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
