package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rule float32-kernel.
//
// The distance kernels are the innermost loop of every query and build:
// vec's Dot/SquaredL2/CosineDistance, theap's neighbor heaps, and the
// Algorithm 2 traversal in internal/graph. They must stay in float32 —
// a stray float64 widening halves the effective SIMD width, doubles
// memory traffic for spilled accumulators, and (worse for a reproduction)
// changes rounding so recall numbers stop matching runs that kept the
// kernel narrow. The compiler happily inserts such widenings wherever a
// math.* helper is called, so the rule bans float64 conversions and
// math.* calls inside the kernel packages.
const ruleFloat32 = "float32-kernel"

// float32Allowlist names, per module-relative package, the functions
// allowed to widen. Each package gets exactly one blessed widening point
// so every float64 excursion is auditable: vec.sqrt32 wraps the final
// math.Sqrt that CosineDistance and Normalize need (there is no float32
// sqrt in the standard library), clamps negatives, and narrows straight
// back. Everything else goes through it.
var float32Allowlist = map[string]map[string]bool{
	"internal/vec": {"sqrt32": true},
}

// float32Scope returns whether the rule applies to pkg at all and, when
// limited, whether it applies only to distance/search functions.
func float32Scope(rel string) (applies, wholePackage bool) {
	switch rel {
	case "internal/vec", "internal/theap":
		return true, true
	case "internal/graph":
		// The graph package also holds construction-time code (connectivity
		// repair, CSR assembly) where float64 is harmless; only the query
		// path is kernel code.
		return true, false
	}
	return false, false
}

func (l *linter) checkFloat32Kernel(pkg *Package) {
	applies, whole := float32Scope(pkg.Rel)
	if !applies {
		return
	}
	allow := float32Allowlist[pkg.Rel]
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if allow[name] {
				continue
			}
			if !whole && !strings.Contains(name, "Distance") && !strings.Contains(name, "Search") {
				continue
			}
			l.checkFloat32Body(pkg, name, fd.Body)
		}
	}
}

func (l *linter) checkFloat32Body(pkg *Package, fn string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && isFloat64(tv.Type) {
			l.report(call.Pos(), ruleFloat32,
				"float64 conversion in %s: hot-path kernels are float32-only (route through the allowlisted widening point or //lint:ignore %s)",
				fn, ruleFloat32)
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math" {
					l.report(call.Pos(), ruleFloat32,
						"math.%s call in %s operates on float64: hot-path kernels are float32-only (route through the allowlisted widening point or //lint:ignore %s)",
						sel.Sel.Name, fn, ruleFloat32)
				}
			}
		}
		return true
	})
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
