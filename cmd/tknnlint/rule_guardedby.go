package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule guarded-by.
//
// The lock-discipline rule infers which mutex guards which field and only
// inspects exported methods of the same package. This rule is its
// annotation-driven, interprocedural upgrade: a struct field declared as
//
//	blocks []Block //tknn:guardedBy(mu)
//
// must be read and written only while the named mutex is statically held.
// The directive names one or more sync.Mutex/RWMutex objects — sibling
// fields of the same struct or package-level vars — and every listed
// mutex must be held at every access. Held-ness is propagated over the
// module-internal call graph (callgraph.go): a function's entry-held set
// is the intersection of what every static caller holds at the call
// site, so a private helper called only under the lock is verified, not
// exempted. `...Locked` helpers of annotated types additionally get a
// call-site check: callers that do not hold the conventional mutex are
// flagged at the call, and the helper's body is then checked under the
// assumption the convention holds (no double report).
//
// Distinct findings:
//
//   - read/write of an annotated field with a required mutex not held
//   - write of an annotated field while the mutex is only read-locked
//     (RLock held, Lock not) — memory-safe-looking but racy
//   - a call to a ...Locked helper of an annotated type without the lock
//   - malformed or misplaced directives (unknown mutex, target not a
//     mutex, directive not attached to a named struct field)
//
// Escape hatches: accesses through a local freshly created in the same
// function (x := &T{...}, T{}, new(T)) are exempt — pre-publication
// initialization needs no lock; everything else goes through
// `//lint:ignore guarded-by reason`. Closures are separate analysis
// units: they inherit no held locks from the enclosing function and must
// lock for themselves or be suppressed. Types with at least one
// annotated field drop out of lock-discipline's inference pass —
// annotation supersedes guessing.
const ruleGuarded = "guarded-by"

// guardDirective is the raw comment prefix, Go-directive style (no space
// after //).
const guardDirective = "//tknn:guardedBy"

// guardIndex is the module-wide annotation index plus the results of the
// interprocedural held-lock propagation, built once per lint run.
type guardIndex struct {
	// fields maps an annotated field object to the mutexes that must all
	// be held at every access.
	fields map[*types.Var][]*types.Var
	// annotatedTypes marks struct types carrying at least one directive;
	// lock-discipline inference skips them.
	annotatedTypes map[*types.TypeName]bool
	// entry is each declared function's entry-held set after the
	// intersection fixpoint.
	entry map[*types.Func]heldSet
	// bodyEvts caches every declaration's main-body lock events.
	bodyEvts map[*types.Func][]lockEvt
	// pend holds directive-misuse and Locked-call-site findings, tagged
	// with the package they belong to so checkGuardedBy reports each in
	// its own package (respecting the CLI package filter).
	pend []pendingGuardDiag
}

type pendingGuardDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

// guardIndex lazily builds the module annotation index and runs the
// propagation passes.
func (l *linter) guardIndex() *guardIndex {
	if l.guards != nil {
		return l.guards
	}
	gi := &guardIndex{
		fields:         map[*types.Var][]*types.Var{},
		annotatedTypes: map[*types.TypeName]bool{},
		entry:          map[*types.Func]heldSet{},
		bodyEvts:       map[*types.Func][]lockEvt{},
	}
	l.guards = gi
	for _, pkg := range l.mod.Pkgs {
		gi.parseAnnotations(pkg)
	}
	gi.propagate(l)
	return gi
}

// parseAnnotations scans one package for //tknn:guardedBy directives,
// resolving guard names and recording misuse findings.
func (gi *guardIndex) parseAnnotations(pkg *Package) {
	consumed := map[*ast.Comment]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				for _, field := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg == nil {
							continue
						}
						for _, c := range cg.List {
							if !strings.HasPrefix(c.Text, guardDirective) {
								continue
							}
							consumed[c] = true
							gi.parseFieldDirective(pkg, tn, st, field, c)
						}
					}
				}
			}
		}
		// Any directive comment not consumed above sits somewhere a
		// directive cannot go: a method, a var, a type doc, a statement.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, guardDirective) && !consumed[c] {
					gi.pendDiag(pkg, c.Pos(),
						"//tknn:guardedBy must be attached to a named struct field declaration")
				}
			}
		}
	}
}

// parseFieldDirective handles one directive attached to a struct field.
func (gi *guardIndex) parseFieldDirective(pkg *Package, tn *types.TypeName, st *ast.StructType, field *ast.Field, c *ast.Comment) {
	if len(field.Names) == 0 {
		gi.pendDiag(pkg, c.Pos(), "//tknn:guardedBy cannot annotate an embedded field; name the field")
		return
	}
	names, errMsg := parseGuardArgs(c.Text)
	if errMsg != "" {
		gi.pendDiag(pkg, c.Pos(), "malformed //tknn:guardedBy directive: "+errMsg)
		return
	}
	if tn != nil {
		gi.annotatedTypes[tn] = true
	}
	var guards []*types.Var
	for _, name := range names {
		mu := resolveGuard(pkg, st, name)
		switch {
		case mu == nil:
			gi.pendDiag(pkg, c.Pos(), fmt.Sprintf(
				"//tknn:guardedBy names unknown mutex %q: no such sibling field or package-level var", name))
		case !isSyncMutex(mu.Type()):
			gi.pendDiag(pkg, c.Pos(), fmt.Sprintf(
				"//tknn:guardedBy target %q is a %s, not a sync.Mutex or sync.RWMutex", name, mu.Type()))
		default:
			guards = append(guards, mu)
		}
	}
	if len(guards) == 0 {
		return
	}
	for _, nameIdent := range field.Names {
		if fv, ok := pkg.Info.Defs[nameIdent].(*types.Var); ok {
			gi.fields[fv] = guards
		}
	}
}

// parseGuardArgs extracts the mutex names from a raw directive comment.
func parseGuardArgs(text string) ([]string, string) {
	rest := strings.TrimPrefix(text, guardDirective)
	open := strings.Index(rest, "(")
	closeIdx := strings.LastIndex(rest, ")")
	if open != 0 || closeIdx < open {
		return nil, "expected //tknn:guardedBy(mu[, mu2])"
	}
	var names []string
	for _, part := range strings.Split(rest[open+1:closeIdx], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			names = append(names, part)
		}
	}
	if len(names) == 0 {
		return nil, "empty mutex list"
	}
	return names, ""
}

// resolveGuard resolves a directive argument to a mutex object: a
// sibling field of the annotated struct, else a package-level var.
func resolveGuard(pkg *Package, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				v, _ := pkg.Info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	if pkg.Types != nil {
		if v, ok := pkg.Types.Scope().Lookup(name).(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (gi *guardIndex) pendDiag(pkg *Package, pos token.Pos, msg string) {
	gi.pend = append(gi.pend, pendingGuardDiag{pkg: pkg, pos: pos, msg: msg})
}

// propagate computes every function's entry-held set as the intersection
// over its static, non-closure call sites of (locks held at the site ∪
// the caller's own entry set), then runs the ...Locked call-site check
// against the converged sets.
func (gi *guardIndex) propagate(l *linter) {
	mg := l.graph()
	for _, fn := range mg.declOrder {
		site := mg.decls[fn]
		gi.bodyEvts[fn] = unitLockEvents(site.pkg, site.decl.Body)
	}
	callers := mg.callersOf(func(e callEdge) bool { return !e.inClosure })

	// baseline: what an uncalled (or unresolvable) function may assume.
	// ...Locked helpers assume their receiver's conventional mutex is
	// write-held — that is the contract the name states.
	baseline := func(fn *types.Func) heldSet {
		h := heldSet{}
		if lockedHelperName(fn) {
			if mu := receiverDefaultMutex(fn); mu != nil {
				h.add(mu, heldW)
			}
		}
		return h
	}

	// lockedAssumed: when a call site reaches a ...Locked helper of an
	// annotated type without the conventional mutex, the fixpoint assumes
	// the convention anyway (the site itself is flagged afterwards) so the
	// helper's interior is not double-reported.
	lockedAssumed := func(callee *types.Func, held heldSet) heldSet {
		if !lockedHelperName(callee) {
			return held
		}
		tn := receiverTypeName(callee)
		if tn == nil || !gi.annotatedTypes[tn] {
			return held
		}
		mu := receiverDefaultMutex(callee)
		if mu == nil {
			return held
		}
		if _, ok := held[mu]; !ok {
			held = held.union(nil)
			held.add(mu, heldW)
		}
		return held
	}

	// nil entry = TOP (not yet constrained by any caller).
	called := map[*types.Func]bool{}
	for fn := range callers {
		if len(callers[fn]) > 0 {
			called[fn] = true
		}
	}
	for _, fn := range mg.declOrder {
		if !called[fn] {
			gi.entry[fn] = baseline(fn)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range mg.declOrder {
			if !called[fn] {
				continue
			}
			var acc heldSet
			first := true
			for _, site := range callers[fn] {
				callerEntry, known := gi.entry[site.caller]
				if !known {
					continue // caller still TOP: no constraint yet
				}
				contrib := heldAtPos(gi.bodyEvts[site.caller], site.pos).union(callerEntry)
				contrib = lockedAssumed(fn, contrib)
				if first {
					acc, first = contrib, false
				} else {
					acc = acc.intersect(contrib)
				}
			}
			if first {
				continue // pure call cycle: stays TOP this round
			}
			if prev, known := gi.entry[fn]; !known || !prev.equal(acc) {
				gi.entry[fn] = acc
				changed = true
			}
		}
	}
	// Anything still TOP is only reachable through an unresolved cycle;
	// fall back to the naming-convention baseline.
	for _, fn := range mg.declOrder {
		if _, known := gi.entry[fn]; !known {
			gi.entry[fn] = baseline(fn)
		}
	}

	// ...Locked call-site check against the converged entry sets.
	for _, caller := range mg.declOrder {
		var fresh map[types.Object]bool
		for _, e := range mg.edges[caller] {
			if e.inClosure || !lockedHelperName(e.callee) {
				continue
			}
			tn := receiverTypeName(e.callee)
			if tn == nil || !gi.annotatedTypes[tn] {
				continue
			}
			mu := receiverDefaultMutex(e.callee)
			if mu == nil {
				continue
			}
			site := mg.decls[caller]
			if fresh == nil {
				fresh = freshLocals(site.pkg, site.decl)
			}
			// A Locked call on a freshly created, still-private receiver is
			// pre-publication initialization, same as a direct field access.
			if recv := callReceiverRoot(site, e.pos); recv != nil && fresh[recv] {
				continue
			}
			held := heldAtPos(gi.bodyEvts[caller], e.pos).union(gi.entry[caller])
			if _, ok := held[mu]; !ok {
				gi.pendDiag(site.pkg, e.pos, fmt.Sprintf(
					"call to %s requires %s held by the caller (...Locked convention on an annotated type)",
					e.callee.Name(), lockDisplayName(mu)))
			}
		}
	}
}

// callReceiverRoot finds the method call starting at pos inside the
// declaration and unwraps its receiver expression to the root local, or
// nil when the call is not a selector call on a plain variable chain.
func callReceiverRoot(site declSite, pos token.Pos) types.Object {
	var root *ast.Ident
	ast.Inspect(site.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() != pos {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			root = chainRoot(sel.X)
		}
		return false
	})
	if root == nil {
		return nil
	}
	return objectOf(site.pkg, root)
}

// receiverTypeName resolves a method to its receiver's named type.
func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkGuardedBy reports the package's pending directive/call-site
// findings and verifies every annotated-field access declared in pkg.
func (l *linter) checkGuardedBy(pkg *Package) {
	gi := l.guardIndex()
	for _, d := range gi.pend {
		if d.pkg == pkg {
			l.report(d.pos, ruleGuarded, "%s", d.msg)
		}
	}
	if len(gi.fields) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				l.checkGuardedAccesses(pkg, fd, fn, gi)
			}
		}
	}
}

// checkGuardedAccesses verifies one declaration's annotated-field
// accesses against the locks held at each access point.
func (l *linter) checkGuardedAccesses(pkg *Package, fd *ast.FuncDecl, fn *types.Func, gi *guardIndex) {
	// Cheap pre-scan: most functions touch no annotated field.
	touches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					if _, annotated := gi.fields[v]; annotated {
						touches = true
					}
				}
			}
		}
		return true
	})
	if !touches {
		return
	}

	parents := buildParents(fd.Body)
	fresh := freshLocals(pkg, fd)

	// Closures are separate units: their own lock events, empty entry set.
	type unit struct {
		node ast.Node
		sp   span
		evts []lockEvt
		got  bool
	}
	var lits []*unit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, &unit{node: fl, sp: span{fl.Pos(), fl.End()}})
		}
		return true
	})
	unitFor := func(p token.Pos) *unit {
		var best *unit
		for _, u := range lits {
			if p >= u.sp.lo && p < u.sp.hi {
				if best == nil || (u.sp.lo >= best.sp.lo && u.sp.hi <= best.sp.hi) {
					best = u
				}
			}
		}
		return best
	}

	type repKey struct {
		unit  ast.Node
		field *types.Var
		mu    *types.Var
		write bool
	}
	reported := map[repKey]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		guards, annotated := gi.fields[field]
		if !annotated {
			return true
		}
		if root := chainRoot(sel.X); root != nil {
			if obj := objectOf(pkg, root); obj != nil && fresh[obj] {
				return true // freshly created local: pre-publication init
			}
		}
		var held heldSet
		var unitNode ast.Node
		if u := unitFor(sel.Pos()); u != nil {
			if !u.got {
				u.evts = unitLockEvents(pkg, u.node)
				u.got = true
			}
			held = heldAtPos(u.evts, sel.Pos())
			unitNode = u.node
		} else {
			held = heldAtPos(gi.bodyEvts[fn], sel.Pos()).union(gi.entry[fn])
			unitNode = fd.Body
		}
		write := isWriteAccess(parents, sel)
		verb := "read of"
		if write {
			verb = "write to"
		}
		for _, mu := range guards {
			key := repKey{unitNode, field, mu, write}
			if reported[key] {
				continue
			}
			flavor, ok := held[mu]
			switch {
			case !ok:
				reported[key] = true
				l.report(sel.Pos(), ruleGuarded,
					"%s %s requires %s held (//tknn:guardedBy)",
					verb, fieldDisplayName(field), lockDisplayName(mu))
			case write && flavor == heldR:
				reported[key] = true
				l.report(sel.Pos(), ruleGuarded,
					"write to %s while %s is only read-locked; writes require the write lock",
					fieldDisplayName(field), lockDisplayName(mu))
			}
		}
		return true
	})
}

// fieldDisplayName renders an annotated field as pkg.Type.field,
// matching lockDisplayName.
func fieldDisplayName(field *types.Var) string {
	name := field.Name()
	if owner := fieldOwner(field); owner != nil {
		name = owner.Name() + "." + name
	}
	if field.Pkg() != nil {
		name = field.Pkg().Name() + "." + name
	}
	return name
}

// buildParents maps every node under root to its enclosing node.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isWriteAccess climbs from a field selector along the value spine and
// reports whether the access mutates the field: assignment LHS (including
// element and sub-field writes), ++/--, or having its address taken.
func isWriteAccess(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	cur := ast.Node(sel)
	for {
		p := parents[cur]
		switch pp := p.(type) {
		case *ast.ParenExpr:
			cur = pp
		case *ast.StarExpr:
			cur = pp
		case *ast.IndexExpr:
			if pp.X != cur {
				return false // sel is an index value: a read
			}
			cur = pp
		case *ast.SliceExpr:
			if pp.X != cur {
				return false
			}
			cur = pp
		case *ast.SelectorExpr:
			if pp.X != cur {
				return false
			}
			cur = pp
		case *ast.AssignStmt:
			for _, lhs := range pp.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return pp.X == cur
		case *ast.UnaryExpr:
			return pp.Op == token.AND && pp.X == cur
		default:
			return false
		}
	}
}

// chainRoot unwraps a selector base to its root identifier, or nil when
// the base is a call or other non-variable expression.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// freshLocals collects local variables assigned a freshly created value
// (&T{...}, T{...}, new(T)) anywhere in the function: accesses through
// them are pre-publication initialization and need no lock.
func freshLocals(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	isFreshRHS := func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				_, ok := unparen(x.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			return isBuiltinCall(pkg, x, "new")
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || !isFreshRHS(s.Rhs[i]) {
					continue
				}
				if obj := objectOf(pkg, id); obj != nil {
					out[obj] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if !isFreshRHS(vs.Values[i]) {
						continue
					}
					if obj := pkg.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}
