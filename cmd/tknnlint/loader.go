package main

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// ImportPath is the full import path (module path + Rel).
	ImportPath string
	// Rel is the package directory relative to the module root, using
	// forward slashes; "" for the root package. All rule scoping keys off
	// Rel so the same rules apply to the testdata corpus regardless of its
	// module name.
	Rel string
	// Dir is the absolute package directory.
	Dir string
	// Files holds the parsed non-test sources, with comments.
	Files []*ast.File
	// FileNames[i] is the absolute path of Files[i].
	FileNames []string
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded module: every package parsed and type-checked in
// dependency order, with standard-library imports resolved from source
// (the toolchain ships no pre-compiled export data, and this tool must not
// depend on golang.org/x/tools).
type Module struct {
	Root string // absolute module root (directory holding go.mod)
	Path string // module path from the go.mod module directive
	Fset *token.FileSet
	Pkgs []*Package // topological (dependency) order
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod and returns it along with the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			mp := modulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("tknnlint: %s/go.mod has no module directive", dir)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("tknnlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) >= 2 && fields[0] == "module" {
			return strings.Trim(fields[1], `"`)
		}
	}
	return ""
}

// parsedPkg is an intermediate record between parsing and type checking.
type parsedPkg struct {
	pkg     *Package
	imports []string // module-internal import paths only
}

// LoadModule parses and type-checks every non-test package under root.
// Directories named testdata, hidden directories, and _-prefixed
// directories are skipped, mirroring cmd/go. Test files (_test.go) are
// excluded: the lint rules guard library and command code, and the
// repository's tests intentionally use patterns (float64 reference math,
// ad-hoc RNGs) the rules forbid elsewhere.
func LoadModule(root string) (*Module, error) {
	root, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	byPath := map[string]*parsedPkg{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pp, perr := parseDir(fset, root, modPath, path)
		if perr != nil {
			return perr
		}
		if pp != nil {
			byPath[pp.pkg.ImportPath] = pp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(byPath) == 0 {
		return nil, fmt.Errorf("tknnlint: no Go packages under %s", root)
	}

	order, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	mod := &Module{Root: root, Path: modPath, Fset: fset}
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	var typeErrs []string
	for _, path := range order {
		pp := byPath[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		tpkg, _ := conf.Check(path, fset, pp.pkg.Files, info)
		pp.pkg.Types = tpkg
		pp.pkg.Info = info
		imp.pkgs[path] = tpkg
		mod.Pkgs = append(mod.Pkgs, pp.pkg)
	}
	if len(typeErrs) > 0 {
		// The gate runs `go build ./...` separately, so type errors here
		// mean either broken code or a loader bug; both are fatal.
		return nil, fmt.Errorf("tknnlint: type checking failed:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	return mod, nil
}

// parseDir parses the non-test Go files of one directory. It returns nil
// when the directory holds no Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	importPath := modPath
	if rel != "" {
		importPath = modPath + "/" + rel
	}

	pp := &parsedPkg{pkg: &Package{ImportPath: importPath, Rel: rel, Dir: dir}}
	for _, n := range names {
		full := filepath.Join(dir, n)
		f, perr := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if !buildSatisfied(f) {
			// Constrained out of the default build (e.g. the tknn_invariants
			// Enabled=true half of internal/invariant). Type checking both
			// halves of a tag pair would be a duplicate declaration.
			continue
		}
		pp.pkg.Files = append(pp.pkg.Files, f)
		pp.pkg.FileNames = append(pp.pkg.FileNames, full)
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				pp.imports = append(pp.imports, p)
			}
		}
	}
	if len(pp.pkg.Files) == 0 {
		return nil, nil
	}
	return pp, nil
}

// buildSatisfied reports whether f survives build-constraint filtering
// under the default configuration: host GOOS/GOARCH, the gc compiler, all
// go1.x version tags satisfied, and no custom tags set — so files gated on
// tags like tknn_invariants or race are skipped, exactly as `go build`
// without -tags would skip them.
func buildSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultTag) {
				return false
			}
		}
	}
	return true
}

// defaultTag is the build-tag oracle for buildSatisfied.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
			return true
		}
	}
	return strings.HasPrefix(tag, "go1.")
}

// topoSort orders packages so every module-internal dependency precedes
// its importers.
func topoSort(pkgs map[string]*parsedPkg) ([]string, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("tknnlint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		pp, ok := pkgs[path]
		if !ok {
			// Import of a module path with no Go files (or a pruned dir);
			// the compiler would reject it, leave it to the build gate.
			state[path] = done
			return nil
		}
		for _, dep := range pp.imports {
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	var roots []string
	for path := range pkgs {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to the packages type
// checked by LoadModule and everything else (the standard library) through
// the source importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
