package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The module-internal static call graph, built once per lint run and
// shared by every interprocedural rule: hotpath-alloc's reachability BFS,
// guarded-by's entry-held-lock propagation, and lock-order's
// acquire-while-holding edges. Before this existed each rule walked the
// module on its own; now there is exactly one construction pass.
//
// Nodes are the *types.Func objects of every function and method declared
// with a body anywhere in the module (gated packages included — each
// consumer decides which nodes to skip). Edges are statically resolved
// call sites: direct calls and method calls whose callee go/types can
// name. Calls through function values, interfaces, and closures resolve
// to nothing and produce no edge — every consumer of the graph must stay
// conservative about that blind spot.

// callEdge is one static call site inside a declaration's body.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
	// gated marks sites inside an `if invariant.Enabled` / `if
	// fault.Enabled` body: dead in default builds.
	gated bool
	// inClosure marks sites inside a nested function literal. Rules that
	// treat closures as separate analysis units (guarded-by, lock-order)
	// skip these when propagating caller state; hotpath reachability
	// follows them, because a closure launched by a hot function runs on
	// the hot path.
	inClosure bool
}

// moduleGraph indexes every declared function and its outgoing static
// calls.
type moduleGraph struct {
	decls map[*types.Func]declSite
	edges map[*types.Func][]callEdge
	// declOrder lists the functions in deterministic declaration order
	// (package load order, then file, then position) so fixed-point
	// passes and reports are stable run to run.
	declOrder []*types.Func
}

// graph lazily builds the module call graph.
func (l *linter) graph() *moduleGraph {
	if l.mg != nil {
		return l.mg
	}
	mg := &moduleGraph{
		decls: map[*types.Func]declSite{},
		edges: map[*types.Func][]callEdge{},
	}
	for _, pkg := range l.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				mg.decls[fn] = declSite{pkg: pkg, decl: fd}
				mg.declOrder = append(mg.declOrder, fn)
			}
		}
	}
	for _, fn := range mg.declOrder {
		site := mg.decls[fn]
		guards := guardedSpans(site.pkg, site.decl)
		closures := closureSpans(site.decl)
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(site.pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, known := mg.decls[callee]; !known {
				return true // outside the module: std lib or bodyless
			}
			mg.edges[fn] = append(mg.edges[fn], callEdge{
				callee:    callee,
				pos:       call.Pos(),
				gated:     posInSpans(call.Pos(), guards),
				inClosure: posInSpans(call.Pos(), closures),
			})
			return true
		})
	}
	l.mg = mg
	return mg
}

// closureSpans returns the position ranges of every function literal in
// the declaration body.
func closureSpans(decl *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, span{fl.Pos(), fl.End()})
		}
		return true
	})
	return out
}

// callersOf inverts the edge map: for each function, the (caller, edge)
// pairs that reach it. Closure-hosted and gated edges are filtered by the
// keep predicate.
func (mg *moduleGraph) callersOf(keep func(callEdge) bool) map[*types.Func][]callerSite {
	out := map[*types.Func][]callerSite{}
	for _, caller := range mg.declOrder {
		for _, e := range mg.edges[caller] {
			if keep != nil && !keep(e) {
				continue
			}
			out[e.callee] = append(out[e.callee], callerSite{caller: caller, pos: e.pos})
		}
	}
	return out
}

// callerSite is one inbound call: who calls, and from where.
type callerSite struct {
	caller *types.Func
	pos    token.Pos
}
