// Command tknnctl is the command-line client for a tknnd server.
//
//	tknnctl -server http://localhost:8080 <command>
//
// Commands:
//
//	health                         liveness check
//	stats                          index shape
//	add -time T -vector "1,2,3"    insert one vector
//	load -fvecs FILE [-start-time T] [-max N]
//	                               bulk-insert an .fvecs file (timestamps
//	                               start at start-time and increment)
//	search -k K -start A -end B -vector "1,2,3"
//	                               time-restricted kNN query
//	checkpoint                     snapshot the index now and prune the
//	                               WAL (requires tknnd -data-dir)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tknnctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("tknnctl", flag.ContinueOnError)
	serverURL := global.String("server", "http://localhost:8080", "tknnd base URL")
	if err := global.Parse(args); err != nil {
		return err
	}
	if global.NArg() < 1 {
		global.Usage()
		return fmt.Errorf("missing command")
	}
	c := client.New(*serverURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cmd, rest := global.Arg(0), global.Args()[1:]
	switch cmd {
	case "health":
		if err := c.Health(ctx); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("vectors:     %d\nblocks:      %d\ntree height: %d\ndim:         %d\nmetric:      %s\nleaf size:   %d\n",
			st.Vectors, st.Blocks, st.TreeHeight, st.Dim, st.Metric, st.LeafSize)
		return nil
	case "checkpoint":
		info, err := c.Checkpoint(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint %s: covers %d records, %d bytes in %s (%d segments removed)\n",
			info.Path, info.Seq, info.Bytes, info.Duration, info.SegmentsRemoved)
		return nil
	case "add":
		return runAdd(ctx, c, rest)
	case "load":
		return runLoad(ctx, c, rest)
	case "search":
		return runSearch(ctx, c, rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func runAdd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("add", flag.ContinueOnError)
	tm := fs.Int64("time", 0, "timestamp")
	vecStr := fs.String("vector", "", "comma-separated coordinates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v, err := parseVector(*vecStr)
	if err != nil {
		return err
	}
	id, err := c.Add(ctx, v, *tm)
	if err != nil {
		return err
	}
	fmt.Printf("id %d\n", id)
	return nil
}

func runLoad(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	path := fs.String("fvecs", "", ".fvecs file to load")
	startTime := fs.Int64("start-time", 0, "timestamp of the first vector")
	maxN := fs.Int("max", 0, "cap on vectors to load (0 = all)")
	batchSize := fs.Int("batch", 256, "vectors per request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("load: -fvecs is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := dataset.ReadFVecs(f, *maxN)
	if err != nil {
		return err
	}
	total := 0
	for lo := 0; lo < store.Len(); lo += *batchSize {
		hi := lo + *batchSize
		if hi > store.Len() {
			hi = store.Len()
		}
		batch := make([]server.AddEntry, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, server.AddEntry{Vector: store.At(i), Time: *startTime + int64(i)})
		}
		ids, err := c.AddBatch(ctx, batch)
		if err != nil {
			return fmt.Errorf("after %d vectors: %w", total, err)
		}
		total += len(ids)
	}
	fmt.Printf("loaded %d vectors from %s\n", total, *path)
	return nil
}

func runSearch(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	k := fs.Int("k", 10, "result count")
	start := fs.Int64("start", 0, "window start (inclusive)")
	end := fs.Int64("end", 0, "window end (exclusive)")
	vecStr := fs.String("vector", "", "comma-separated coordinates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v, err := parseVector(*vecStr)
	if err != nil {
		return err
	}
	res, err := c.Search(ctx, v, *k, *start, *end)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("id=%d time=%d dist=%g\n", r.ID, r.Time, r.Dist)
	}
	if len(res) == 0 {
		fmt.Println("no results")
	}
	return nil
}

func parseVector(s string) ([]float32, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-vector is required (comma-separated floats)")
	}
	parts := strings.Split(s, ",")
	v := make([]float32, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		v[i] = float32(x)
	}
	return v, nil
}
