package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	tknn "repro"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/vec"
	"repro/internal/wal"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 4, LeafSize: 8, GraphDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(ix))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunCheckpoint(t *testing.T) {
	opts := tknn.MBIOptions{Dim: 4, LeafSize: 8, GraphDegree: 4}
	d, err := wal.Open(wal.Config{Dir: t.TempDir(), Sync: wal.SyncNever}, func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Errorf("closing manager: %v", err)
		}
	})
	ts := httptest.NewServer(server.NewDurable(d.Index().(*tknn.MBI), d))
	t.Cleanup(ts.Close)

	if err := run([]string{"-server", ts.URL, "add", "-time", "1", "-vector", "1,0,0,0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-server", ts.URL, "checkpoint"}); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Checkpoints != 1 {
		t.Fatalf("stats after ctl checkpoint: %+v", st)
	}

	// Against a snapshot-on-exit server the command fails with the
	// server's explanation rather than succeeding vacuously.
	legacy := testServer(t)
	if err := run([]string{"-server", legacy.URL, "checkpoint"}); err == nil {
		t.Fatal("checkpoint against a non-durable server should fail")
	}
}

func TestParseVector(t *testing.T) {
	v, err := parseVector("1, 2.5,-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[0] != 1 || v[1] != 2.5 || v[2] != -3 {
		t.Errorf("parsed %v", v)
	}
	if _, err := parseVector(""); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := parseVector("1,x,3"); err == nil {
		t.Error("garbage coordinate accepted")
	}
}

func TestRunHealthStatsAddSearch(t *testing.T) {
	ts := testServer(t)
	base := []string{"-server", ts.URL}

	if err := run(append(base, "health")); err != nil {
		t.Fatalf("health: %v", err)
	}
	if err := run(append(base, "add", "-time", "1", "-vector", "1,0,0,0")); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := run(append(base, "add", "-time", "2", "-vector", "0,1,0,0")); err != nil {
		t.Fatalf("add 2: %v", err)
	}
	if err := run(append(base, "search", "-k", "1", "-start", "0", "-end", "10", "-vector", "1,0,0,0")); err != nil {
		t.Fatalf("search: %v", err)
	}
	if err := run(append(base, "stats")); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestRunLoadFVecs(t *testing.T) {
	ts := testServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "base.fvecs")
	store := vec.NewStore(4)
	for i := 0; i < 50; i++ {
		if _, err := store.Append([]float32{float32(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFVecs(f, store); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = run([]string{"-server", ts.URL, "load", "-fvecs", path, "-batch", "16"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// The data is queryable afterwards.
	if err := run([]string{"-server", ts.URL, "search", "-k", "3", "-start", "0", "-end", "50", "-vector", "25,0,0,0"}); err != nil {
		t.Fatalf("post-load search: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	ts := testServer(t)
	cases := [][]string{
		{"-server", ts.URL},                         // missing command
		{"-server", ts.URL, "bogus"},                // unknown command
		{"-server", ts.URL, "add", "-time", "1"},    // missing vector
		{"-server", ts.URL, "load"},                 // missing fvecs
		{"-server", ts.URL, "search", "-k", "1"},    // missing vector
		{"-server", "http://127.0.0.1:1", "health"}, // unreachable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
