// Command mbibench regenerates the tables and figures of the paper's
// evaluation (§5) on the synthetic dataset stand-ins.
//
// Usage:
//
//	mbibench [flags] <experiment>
//
// Experiments:
//
//	table2    dataset summary (paper vs stand-ins)
//	table3    default parameters
//	table4    index sizes of MBI and SF
//	fig5      QPS vs window fraction at the recall target (all profiles)
//	fig6      recall/QPS Pareto curves (COMS)
//	fig7      indexing time and index size scalability (SIFT)
//	fig8      leaf-size sweep, incremental insertion (MovieLens)
//	fig9      tau sweep (MovieLens, COMS)
//	ablation  per-block graph builder ablation (NNDescent vs NSW)
//	drift     non-stationary data: MBI vs SF under cluster drift
//	ivf       quantization-family comparator (IVF-Flat vs SF vs MBI)
//	async     insert-latency profile: synchronous vs background merging
//	wal       ingestion throughput: no WAL vs fsync=interval vs fsync=always
//	exec      intra-query executor: sequential vs parallel at 1/4/16
//	          selected blocks (writes BENCH_exec.json; see -out)
//	allocs    query-path heap traffic: pooled vs caller-owned-scratch
//	          entry points on MBI and BSBF (writes BENCH_allocs.json)
//	sq        SQ8 compression: bytes/vector, asymmetric-kernel scan
//	          throughput, recall vs flat at rerank factors 1/2/4 on
//	          drifting clusters (writes BENCH_sq.json)
//	tier      tiered storage: spill cold blocks to disk, then
//	          recall/p50/p99 and cache hit rate at 1x/4x/16x memory
//	          overcommit vs the all-RAM baseline (writes BENCH_tier.json)
//	chaos     overload resilience: open-loop insert+search traffic at
//	          multiples of capacity against the admission-controlled
//	          server, with a deterministic fault schedule when built
//	          with -tags tknn_fault (writes BENCH_chaos.json; gated)
//	all       everything above, in order (chaos excluded: it enforces
//	          hard gates and wants the tknn_fault build tag)
//
// Flags:
//
//	-scale f     multiply dataset sizes (default 1.0; 0.1 for a fast pass)
//	-seed n      RNG seed (default 1)
//	-queries n   queries per measured point (default 100)
//	-workers n   goroutines for ground truth / parallel builds (default NumCPU)
//	-profiles s  comma-separated profile subset for fig5/fig9/table4
//	-quick       preset: -scale 0.12 with a reduced sweep
//	-out path    JSON report path for the exec and allocs experiments
//	             (default BENCH_exec.json / BENCH_allocs.json per experiment)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mbibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mbibench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale factor")
	seed := fs.Int64("seed", 1, "rng seed")
	queries := fs.Int("queries", 100, "queries per measured point")
	workers := fs.Int("workers", runtime.NumCPU(), "worker goroutines")
	profileList := fs.String("profiles", "", "comma-separated profile subset (default: all)")
	quick := fs.Bool("quick", false, "fast preset (scale 0.12, coarse sweep)")
	out := fs.String("out", "", "JSON report path (default per experiment: BENCH_exec.json, BENCH_allocs.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d", fs.NArg())
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *scale != 1.0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	cfg.QueriesPerPoint = *queries
	cfg.Workers = *workers

	profiles, err := selectProfiles(*profileList)
	if err != nil {
		return err
	}

	// Each JSON-writing experiment has its own default report name so
	// `mbibench all` never overwrites one report with another; -out
	// overrides it for a single-experiment run.
	outPath := func(def string) string {
		if *out != "" {
			return *out
		}
		return def
	}

	w := os.Stdout
	switch cmd := fs.Arg(0); cmd {
	case "table2":
		bench.Table2(cfg, profiles, w)
	case "table3":
		bench.Table3(cfg, profiles, w)
	case "table4":
		bench.Table4(cfg, profiles, w)
	case "fig5":
		bench.Fig5(cfg, profiles, w)
	case "fig6":
		bench.Fig6(cfg, w)
	case "fig7":
		bench.Fig7(cfg, w)
	case "fig8":
		bench.Fig8(cfg, w)
	case "fig9":
		fig9Profiles, err := selectProfiles(fig9Default(*profileList))
		if err != nil {
			return err
		}
		bench.Fig9(cfg, fig9Profiles, w)
	case "ablation":
		bench.AblationBuilder(cfg, w)
	case "drift":
		bench.DriftExperiment(cfg, w)
	case "ivf":
		bench.IVFExperiment(cfg, profiles, w)
	case "async":
		bench.AsyncMergeExperiment(cfg, w)
	case "wal":
		bench.WALExperiment(cfg, w)
	case "exec":
		if _, err := bench.ExecExperiment(cfg, w, outPath("BENCH_exec.json")); err != nil {
			return err
		}
	case "allocs":
		if _, err := bench.AllocsExperiment(cfg, w, outPath("BENCH_allocs.json")); err != nil {
			return err
		}
	case "sq":
		if _, err := bench.SQExperiment(cfg, w, outPath("BENCH_sq.json")); err != nil {
			return err
		}
	case "tier":
		if _, err := bench.TierExperiment(cfg, w, outPath("BENCH_tier.json")); err != nil {
			return err
		}
	case "chaos":
		if _, err := bench.ChaosExperiment(cfg, w, outPath("BENCH_chaos.json")); err != nil {
			return err
		}
	case "all":
		bench.Table2(cfg, profiles, w)
		bench.Table3(cfg, profiles, w)
		bench.Table4(cfg, profiles, w)
		bench.Fig5(cfg, profiles, w)
		bench.Fig6(cfg, w)
		bench.Fig7(cfg, w)
		bench.Fig8(cfg, w)
		fig9Profiles, err := selectProfiles(fig9Default(*profileList))
		if err != nil {
			return err
		}
		bench.Fig9(cfg, fig9Profiles, w)
		bench.AblationBuilder(cfg, w)
		bench.DriftExperiment(cfg, w)
		bench.IVFExperiment(cfg, profiles, w)
		bench.AsyncMergeExperiment(cfg, w)
		bench.WALExperiment(cfg, w)
		if _, err := bench.ExecExperiment(cfg, w, outPath("BENCH_exec.json")); err != nil {
			return err
		}
		if _, err := bench.AllocsExperiment(cfg, w, outPath("BENCH_allocs.json")); err != nil {
			return err
		}
		if _, err := bench.SQExperiment(cfg, w, outPath("BENCH_sq.json")); err != nil {
			return err
		}
		if _, err := bench.TierExperiment(cfg, w, outPath("BENCH_tier.json")); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return nil
}

// fig9Default narrows Figure 9 to the paper's two datasets unless the
// user chose a subset explicitly.
func fig9Default(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return "MovieLens,COMS"
}

func selectProfiles(list string) ([]dataset.Profile, error) {
	if list == "" {
		return dataset.Profiles(), nil
	}
	var out []dataset.Profile
	for _, name := range strings.Split(list, ",") {
		p, err := dataset.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
