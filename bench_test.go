// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B function per artifact. They run the bench
// harness at QuickConfig scale so that `go test -bench=.` finishes in
// minutes; use cmd/mbibench for full-scale runs (and EXPERIMENTS.md for
// recorded results).
package tknn_test

import (
	"io"
	"math/rand"
	"testing"

	tknn "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
)

func quickProfiles(b *testing.B, names ...string) []dataset.Profile {
	b.Helper()
	var out []dataset.Profile
	for _, n := range names {
		p, err := dataset.ProfileByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func Benchmark_Table2_Datasets(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.Table2(c, dataset.Profiles(), io.Discard)
	}
}

func Benchmark_Table3_Parameters(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.Table3(c, dataset.Profiles(), io.Discard)
	}
}

func Benchmark_Table4_IndexSizes(b *testing.B) {
	c := bench.QuickConfig()
	ps := quickProfiles(b, "MovieLens", "COMS")
	for i := 0; i < b.N; i++ {
		bench.Table4(c, ps, io.Discard)
	}
}

func Benchmark_Fig5_SearchPerformance(b *testing.B) {
	c := bench.QuickConfig()
	ps := quickProfiles(b, "MovieLens")
	for i := 0; i < b.N; i++ {
		bench.Fig5(c, ps, io.Discard)
	}
}

func Benchmark_Fig6_RecallQPS(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.Fig6(c, io.Discard)
	}
}

func Benchmark_Fig7_Scalability(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.Fig7(c, io.Discard)
	}
}

func Benchmark_Fig8_LeafSize(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.Fig8(c, io.Discard)
	}
}

func Benchmark_Fig9_Tau(b *testing.B) {
	c := bench.QuickConfig()
	ps := quickProfiles(b, "MovieLens")
	for i := 0; i < b.N; i++ {
		bench.Fig9(c, ps, io.Discard)
	}
}

func Benchmark_Ablation_GraphBuilder(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.AblationBuilder(c, io.Discard)
	}
}

// --- public-API micro-benchmarks ----------------------------------------

// benchData builds a small clustered workload once per benchmark.
func benchData(b *testing.B, n, dim int) [][]float32 {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	centers := make([][]float32, 8)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.6)
		}
		out[i] = v
	}
	return out
}

func BenchmarkMBI_Add(b *testing.B) {
	vs := benchData(b, 4096, 64)
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 64, LeafSize: 512, GraphDegree: 12})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Add(vs[i%len(vs)], int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMBI_Search(b *testing.B) {
	vs := benchData(b, 8192, 64)
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 64, LeafSize: 512, GraphDegree: 12, Epsilon: 1.2})
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Intn(len(vs) / 2)
		q := tknn.Query{Vector: vs[rng.Intn(len(vs))], K: 10, Start: int64(a), End: int64(a + len(vs)/2)}
		if _, err := ix.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSBF_Search(b *testing.B) {
	vs := benchData(b, 8192, 64)
	ix, err := tknn.NewBSBF(64, tknn.Euclidean)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Intn(len(vs) / 2)
		q := tknn.Query{Vector: vs[rng.Intn(len(vs))], K: 10, Start: int64(a), End: int64(a + len(vs)/2)}
		if _, err := ix.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSF_Search(b *testing.B) {
	vs := benchData(b, 8192, 64)
	ix, err := tknn.NewSF(tknn.SFOptions{Dim: 64, GraphDegree: 12, Epsilon: 1.2})
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	ix.Build()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Intn(len(vs) / 2)
		q := tknn.Query{Vector: vs[rng.Intn(len(vs))], K: 10, Start: int64(a), End: int64(a + len(vs)/2)}
		if _, err := ix.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Extension_Drift(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.DriftExperiment(c, io.Discard)
	}
}

func Benchmark_Extension_IVF(b *testing.B) {
	c := bench.QuickConfig()
	ps := quickProfiles(b, "MovieLens")
	for i := 0; i < b.N; i++ {
		bench.IVFExperiment(c, ps, io.Discard)
	}
}

func Benchmark_Extension_AsyncMerge(b *testing.B) {
	c := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		bench.AsyncMergeExperiment(c, io.Discard)
	}
}
