# Developer entry points. `make check` is the full CI gate; the individual
# targets mirror the named steps in .github/workflows/ci.yml.

GO ?= go

# Packages whose concurrency claims are exercised under the race detector.
# stress_race_test.go in internal/core is gated on the `race` build tag,
# so it runs here and nowhere else.
RACE_PKGS = ./internal/core/ ./internal/server/ ./internal/client/ ./internal/nndescent/

.PHONY: check fmt vet build test race lint

check: fmt vet build test race lint

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

lint:
	$(GO) run ./cmd/tknnlint ./...
