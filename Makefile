# Developer entry points. `make check` is the full CI gate; the individual
# targets mirror the named steps in .github/workflows/ci.yml.

GO ?= go

# Packages whose concurrency claims are exercised under the race detector.
# stress_race_test.go in internal/core is gated on the `race` build tag,
# so it runs here and nowhere else.
RACE_PKGS = ./internal/core/ ./internal/exec/ ./internal/server/ ./internal/client/ ./internal/nndescent/ ./internal/wal/ ./internal/graph/ ./internal/theap/ ./internal/sq/ ./internal/fault/ ./internal/blockcache/

.PHONY: check fmt vet build test race lint lockgraph invariants faults recover bench-exec bench-allocs bench-sq bench-tier bench-chaos allocs-gate

check: fmt vet build test race lint invariants faults recover

# The tknnlint corpus under cmd/tknnlint/testdata is lint-rule input, not
# repository code; its formatting is frozen with its goldens.
fmt:
	@out=$$(find . -name '*.go' -not -path './cmd/tknnlint/testdata/*' -print0 | xargs -0 gofmt -l); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

lint:
	$(GO) run ./cmd/tknnlint ./...

# Module-wide lock-order graph (Graphviz). Render with
# `dot -Tsvg lockorder.dot -o lockorder.svg`; the lock-order lint rule
# fails `make lint` if this graph ever acquires a cycle.
lockgraph:
	$(GO) run ./cmd/tknnlint -lockgraph ./... > lockorder.dot

# Deep-validation build: the whole suite with runtime invariant assertions
# compiled in (internal/invariant), including the differential oracle
# sweep in internal/oracle.
invariants:
	$(GO) test -tags tknn_invariants ./...

# Fault-injection build: the whole suite with the internal/fault hooks
# compiled in (build tag tknn_fault), including the injected-failure WAL
# recovery tests. Default builds compile the hooks out entirely.
faults:
	$(GO) test -tags tknn_fault ./...

# Crash-recovery gate: the kill-at-random-offset and torn-tail tests with
# fresh state (-count=1), then the whole WAL package under the race
# detector.
recover:
	$(GO) test -count=1 -run 'Crash|Recovery|TornTail|Fuzz' ./internal/wal/
	$(GO) test -race ./internal/wal/...

# Executor perf trajectory: sequential vs parallel intra-query execution at
# 1/4/16 selected blocks, with result equivalence asserted. Writes
# BENCH_exec.json.
bench-exec:
	$(GO) run ./cmd/mbibench exec

# Query-path heap traffic: pooled vs caller-owned-scratch entry points on
# MBI and BSBF. Writes BENCH_allocs.json.
bench-allocs:
	$(GO) run ./cmd/mbibench allocs

# SQ8 compression benchmark: bytes/vector and memory reduction,
# compressed scan throughput, ns/distance for the asymmetric kernel, and
# recall@10 vs the flat index at rerank factors 1/2/4 on the
# drifting-cluster dataset. Writes BENCH_sq.json.
bench-sq:
	$(GO) run ./cmd/mbibench sq

# Tiered-storage benchmark: spill cold blocks to segment files, then
# recall@10 and p50/p99 latency at 1x/4x/16x memory overcommit against
# the all-RAM baseline, plus the cache hit-rate trajectory. Enforces the
# 4x-overcommit gates (recall within 0.01 of all-RAM, p99 bounded) and
# writes BENCH_tier.json.
bench-tier:
	$(GO) run ./cmd/mbibench tier

# Overload/chaos harness: open-loop insert+search traffic at multiples of
# the measured capacity against the admission-controlled server, with the
# deterministic fault schedule compiled in. Enforces the resilience gates
# (shed with 429, no non-injected 5xx, bounded admitted p99, post-burst
# recovery) and writes BENCH_chaos.json.
bench-chaos:
	$(GO) run -tags tknn_fault ./cmd/mbibench chaos

# Allocation gate: a warmed-up sequential query on the Buf entry points
# must perform zero heap allocations (testing.AllocsPerRun). CI runs this
# alongside the full suite; the tests skip themselves under -race and
# -tags tknn_invariants, where the runtime itself allocates.
allocs-gate:
	$(GO) test -run ZeroAllocs -count=1 ./internal/core/ ./internal/bsbf/
