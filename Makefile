# Developer entry points. `make check` is the full CI gate; the individual
# targets mirror the named steps in .github/workflows/ci.yml.

GO ?= go

# Packages whose concurrency claims are exercised under the race detector.
# stress_race_test.go in internal/core is gated on the `race` build tag,
# so it runs here and nowhere else.
RACE_PKGS = ./internal/core/ ./internal/server/ ./internal/client/ ./internal/nndescent/ ./internal/wal/

.PHONY: check fmt vet build test race lint recover

check: fmt vet build test race lint recover

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

lint:
	$(GO) run ./cmd/tknnlint ./...

# Crash-recovery gate: the kill-at-random-offset and torn-tail tests with
# fresh state (-count=1), then the whole WAL package under the race
# detector.
recover:
	$(GO) test -count=1 -run 'Crash|Recovery|TornTail|Fuzz' ./internal/wal/
	$(GO) test -race ./internal/wal/...
