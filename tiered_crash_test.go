package tknn_test

import (
	"context"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	tknn "repro"
	"repro/internal/persist"
	"repro/internal/wal"
)

// Crash-recovery tests across the spill boundary: a tiered index whose
// cold blocks live in per-block segment files must recover the exact
// acknowledged state by composing the newest snapshot, the segments it
// references, and the WAL suffix; reject torn segments by CRC instead of
// serving garbage; and ignore the debris a crash during a segment write
// leaves behind.

const (
	tierDim      = 8
	tierLeafSize = 16
)

// tierOpts configures tiered storage the way cmd/tknnd does: segments
// live beside the WAL, and a deliberately tiny cache keeps every cold
// query on the fetch path. SpillMaxHeight 64 makes every sealed block
// spill-eligible so the tests cross the boundary as often as possible.
func tierOpts(dataDir string) tknn.MBIOptions {
	return tknn.MBIOptions{
		Dim:            tierDim,
		LeafSize:       tierLeafSize,
		SpillDir:       filepath.Join(dataDir, "segments"),
		CacheBytes:     1 << 16,
		SpillMaxHeight: 64,
	}
}

func tierRestore(opts tknn.MBIOptions) wal.RestoreFunc {
	return func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	}
}

func tierVecs(n int) [][]float32 {
	rng := rand.New(rand.NewSource(21))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, tierDim)
		for j := range v {
			v[j] = rng.Float32()
		}
		out[i] = v
	}
	return out
}

// assertExactAt verifies each listed vector is findable at its own
// timestamp with distance zero — byte-exact recovery, not approximate.
func assertExactAt(t *testing.T, ix *tknn.MBI, vecs [][]float32, idxs ...int) {
	t.Helper()
	for _, i := range idxs {
		res, err := ix.Search(tknn.Query{Vector: vecs[i], K: 1, Start: int64(i), End: int64(i) + 1})
		if err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
		if len(res) != 1 || res[0].Time != int64(i) || res[0].Dist != 0 {
			t.Fatalf("vector %d not recovered exactly: %+v", i, res)
		}
	}
}

// requireColdPlan fails the test unless the full-window plan actually
// graph-searches at least one block — the condition under which segment
// damage must surface. Without it the assertions below would pass
// vacuously on an all-brute-force plan.
func requireColdPlan(t *testing.T, ix *tknn.MBI, start, end int64) {
	t.Helper()
	for _, b := range ix.Explain(start, end).Blocks {
		if !b.BruteForce {
			return
		}
	}
	t.Fatal("full-window plan is all brute force; the test would not touch segments")
}

// cloneTree copies a data directory including its segments/ subdir into
// a fresh temp directory, so each trial maims its own copy.
func cloneTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("cloning %s: %v", src, err)
	}
	return dst
}

// TestTieredKillAfterCheckpointRecoversExactly checkpoints (which spills
// cold blocks first), keeps appending, then simulates a SIGKILL — the
// Manager is abandoned without Close — with a torn segment temp file
// left behind, exactly as a crash mid-spill would leave it. Recovery
// must compose snapshot + segments + WAL suffix into the full
// acknowledged state and keep working.
func TestTieredKillAfterCheckpointRecoversExactly(t *testing.T) {
	dir := t.TempDir()
	opts := tierOpts(dir)
	cfg := wal.Config{Dir: dir, Sync: wal.SyncNever, SegmentBytes: 1 << 12}
	const cpAt, total = 160, 200
	vecs := tierVecs(total + 1)

	m, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < cpAt; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ix := m.Index().(*tknn.MBI)
	if st := ix.Internal().Stats(); st.SpilledBlocks == 0 {
		t.Fatal("checkpoint spilled no blocks; the test never crosses the spill boundary")
	}
	for i := cpAt; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// SIGKILL: the manager is abandoned. A crash during a segment write
	// leaves a torn .tmp in the segments directory; recovery and queries
	// must ignore it (only renamed-in .seg files are ever read).
	torn := filepath.Join(opts.SpillDir, persist.SegmentFileName(2)+".tmp")
	if err := os.WriteFile(torn, []byte("torn segment write"), 0o644); err != nil {
		t.Fatalf("planting torn tmp: %v", err)
	}

	m2, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	ix2 := m2.Index().(*tknn.MBI)
	if got := ix2.Len(); got != total {
		t.Fatalf("recovered %d vectors, want %d", got, total)
	}
	if err := ix2.Internal().CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	if st := ix2.Internal().Stats(); st.SpilledBlocks == 0 {
		t.Fatal("restored index lost its spilled blocks")
	}
	assertExactAt(t, ix2, vecs, 0, cpAt-1, cpAt, total-1)

	// A full-window query pages every selected segment back in: with the
	// segments intact the answer is complete, not partial.
	requireColdPlan(t, ix2, 0, total)
	q := tknn.Query{Vector: vecs[3], K: 10, Start: 0, End: total}
	res, info, err := ix2.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed: %v", err)
	}
	if info.Partial {
		t.Fatal("query over intact segments reported Partial")
	}
	if len(res) != q.K {
		t.Fatalf("got %d results, want %d", len(res), q.K)
	}

	// The recovered manager keeps working: append, checkpoint (spilling
	// the newly sealed blocks), clean restart.
	if err := m2.Append(vecs[total], int64(total)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m3, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer func() {
		if err := m3.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ix3 := m3.Index().(*tknn.MBI)
	if got := ix3.Len(); got != total+1 {
		t.Fatalf("after checkpointed restart index holds %d vectors, want %d", got, total+1)
	}
	assertExactAt(t, ix3, vecs, total)
}

// TestTieredTornSegmentRejectedNotServed maims every segment file —
// truncation at a random offset in half the trials, a random byte flip
// in the other half — and asserts the damage is contained: recovery
// still succeeds (segments are not read at load time), no vector is
// lost from the store, and queries that need a damaged segment degrade
// to Partial instead of erroring or serving garbage.
func TestTieredTornSegmentRejectedNotServed(t *testing.T) {
	fixture := t.TempDir()
	opts := tierOpts(fixture)
	cfg := wal.Config{Dir: fixture, Sync: wal.SyncNever, SegmentBytes: 1 << 12}
	const total = 200
	vecs := tierVecs(total)

	m, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	openFill := m.Index().(*tknn.MBI).Internal().Stats().OpenLeafFill
	if openFill == 0 {
		t.Fatal("fixture has no open-leaf vectors; pick a total that is not a multiple of the leaf size")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(opts.SpillDir, "block-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		dir := cloneTree(t, fixture)
		copts := tierOpts(dir)
		for _, seg := range segs {
			path := filepath.Join(copts.SpillDir, filepath.Base(seg))
			info, err := os.Stat(path)
			if err != nil {
				t.Fatalf("Stat: %v", err)
			}
			if trial%2 == 0 {
				if err := os.Truncate(path, rng.Int63n(info.Size())); err != nil {
					t.Fatalf("Truncate: %v", err)
				}
			} else {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("ReadFile: %v", err)
				}
				data[rng.Intn(len(data))] ^= 0x40
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatalf("WriteFile: %v", err)
				}
			}
		}

		m2, err := wal.Open(cfg2(cfg, dir), tierRestore(copts))
		if err != nil {
			t.Fatalf("trial %d: reopen with damaged segments: %v", trial, err)
		}
		ix := m2.Index().(*tknn.MBI)
		if got := ix.Len(); got != total {
			t.Fatalf("trial %d: recovered %d vectors, want %d", trial, got, total)
		}
		if err := ix.Internal().CheckInvariants(); err != nil {
			t.Fatalf("trial %d: invariants: %v", trial, err)
		}
		// The open leaf's vectors live in RAM, untouched by segment
		// damage: point lookups there stay exact.
		assertExactAt(t, ix, vecs, total-1, total-openFill)

		// A query that needs a damaged segment must degrade to Partial —
		// never an error, never results from a CRC-rejected payload.
		requireColdPlan(t, ix, 0, total)
		q := tknn.Query{Vector: vecs[3], K: 10, Start: 0, End: total}
		res, info, err := ix.SearchDetailed(context.Background(), q)
		if err != nil {
			t.Fatalf("trial %d: SearchDetailed over damaged segments: %v", trial, err)
		}
		if !info.Partial {
			t.Fatalf("trial %d: damaged segments served without Partial (%d results)", trial, len(res))
		}
		for _, r := range res {
			if r.Time < q.Start || r.Time >= q.End {
				t.Fatalf("trial %d: result outside window: %+v", trial, r)
			}
		}
		if err := m2.Close(); err != nil {
			t.Fatalf("trial %d: Close: %v", trial, err)
		}
	}
}

// cfg2 rebinds a WAL config to a cloned directory.
func cfg2(cfg wal.Config, dir string) wal.Config {
	cfg.Dir = dir
	return cfg
}
