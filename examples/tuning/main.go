// Tuning: the paper's §5.4.2 suggestion in action — pre-compute the best
// block-selection threshold τ per query-window size, then let the index
// pick τ per query. Also demonstrates the Explain query planner and how
// τ changes the plans.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	tknn "repro"
)

const (
	dim = 32
	n   = 24000
)

func main() {
	rng := rand.New(rand.NewSource(5))
	centers := make([][]float32, 30)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	newVec := func() []float32 {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, dim)
		for i := range v {
			v[i] = c[i] + float32(rng.NormFloat64()*0.6)
		}
		return v
	}

	ix, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: dim, LeafSize: 1500, GraphDegree: 16, Epsilon: 1.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexing %d vectors...\n", n)
	queries := make([][]float32, 200)
	for i := range queries {
		queries[i] = newVec()
	}
	for i := 0; i < n; i++ {
		if err := ix.Add(newVec(), int64(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Explain: what would a narrow vs a wide window search?
	fmt.Println("\n--- query plans (default tau = 0.5) ---")
	fmt.Print(ix.Explain(1000, 2000))  // ~4% of the data
	fmt.Print(ix.Explain(2000, 22000)) // ~83% of the data

	// Measure mixed-workload throughput with the static default τ.
	mix := func() (int64, int64) {
		// Half the queries are narrow (2%), half wide (70%).
		var wlen int64
		if rng.Intn(2) == 0 {
			wlen = n * 2 / 100
		} else {
			wlen = n * 70 / 100
		}
		start := rng.Int63n(int64(n) - wlen)
		return start, start + wlen
	}
	measure := func(label string) {
		rng := rand.New(rand.NewSource(99)) // same windows each time
		_ = rng
		start := time.Now()
		const rounds = 400
		for i := 0; i < rounds; i++ {
			ts, te := mix()
			if _, err := ix.Search(tknn.Query{Vector: queries[i%len(queries)], K: 10, Start: ts, End: te}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-28s %.0f queries/sec\n", label, rounds/time.Since(start).Seconds())
	}

	fmt.Println("\n--- mixed workload: 50% narrow (2%) + 50% wide (70%) windows ---")
	measure("static tau = 0.5:")

	// Tune: measure the best tau per window-size bucket on the index's
	// own data, then re-measure.
	fmt.Println("\ntuning tau per window size (§5.4.2)...")
	if err := ix.AutoTuneTau(40); err != nil {
		log.Fatal(err)
	}
	fracs, taus := ix.TunedFractions(), ix.TunedTaus()
	for i := range fracs {
		fmt.Printf("  windows up to %4.0f%% of data -> tau %.1f\n", fracs[i]*100, taus[i])
	}
	measure("auto-tuned tau:")
}
