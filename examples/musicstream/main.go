// Musicstream: the streaming-ingestion scenario from the paper's
// introduction ("more than 60,000 new tracks are ingested by Spotify every
// day"). Track embeddings arrive continuously; listeners concurrently ask
// for era-restricted recommendations ("songs like this one, but from
// 2020-2021").
//
// The example demonstrates what MBI's incremental construction costs in
// practice: per-insert latency percentiles (most inserts are O(1) appends;
// a leaf fill triggers a merge cascade), and that queries keep answering
// correctly while the index grows — including over the not-yet-indexed
// open leaf.
//
//	go run ./examples/musicstream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	tknn "repro"
)

const (
	dim       = 48
	numTracks = 60000
	leafSize  = 4096
)

func main() {
	rng := rand.New(rand.NewSource(7))
	genres := make([][]float32, 24)
	for g := range genres {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		genres[g] = v
	}
	newTrack := func() []float32 {
		g := genres[rng.Intn(len(genres))]
		v := make([]float32, dim)
		for i := range v {
			v[i] = g[i] + float32(rng.NormFloat64()*0.6)
		}
		return v
	}

	ix, err := tknn.NewMBI(tknn.MBIOptions{
		Dim:      dim,
		Metric:   tknn.Angular,
		LeafSize: leafSize,
		Epsilon:  1.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest tracks; a background "listener" issues queries as data grows.
	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		queryLat  []time.Duration
		queryMu   sync.Mutex
		insertLat = make([]time.Duration, 0, numTracks)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := ix.Len()
			if n < 1000 {
				time.Sleep(time.Millisecond)
				continue
			}
			// An era covering the most recent ~20% of the catalog.
			start := int64(n * 8 / 10)
			probe := newTrack()
			t0 := time.Now()
			if _, err := ix.Search(tknn.Query{Vector: probe, K: 10, Start: start, End: int64(n)}); err != nil {
				log.Fatal(err)
			}
			queryMu.Lock()
			queryLat = append(queryLat, time.Since(t0))
			queryMu.Unlock()
			time.Sleep(time.Duration(qrng.Intn(2)) * time.Millisecond)
		}
	}()

	fmt.Printf("ingesting %d tracks (leaf size %d)...\n", numTracks, leafSize)
	var maxInsert time.Duration
	var maxAt int
	for i := 0; i < numTracks; i++ {
		t0 := time.Now()
		if err := ix.Add(newTrack(), int64(i)); err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		insertLat = append(insertLat, d)
		if d > maxInsert {
			maxInsert, maxAt = d, i
		}
	}
	close(stop)
	wg.Wait()

	fmt.Printf("\ningested %d tracks into %d blocks (height %d)\n",
		ix.Len(), ix.BlockCount(), ix.TreeHeight())
	fmt.Println("\ninsert latency (amortized O(n^0.14 log n), spikes at merge cascades):")
	p := percentiles(insertLat)
	fmt.Printf("  p50 %-10s p99 %-10s p99.9 %-10s max %s (at track %d — a full-tree merge)\n",
		p[0].Round(time.Microsecond), p[1].Round(time.Microsecond),
		p[2].Round(time.Microsecond), maxInsert.Round(time.Millisecond), maxAt)

	queryMu.Lock()
	defer queryMu.Unlock()
	if len(queryLat) > 0 {
		q := percentiles(queryLat)
		fmt.Printf("\n%d concurrent era-queries answered while ingesting:\n", len(queryLat))
		fmt.Printf("  p50 %-10s p99 %-10s p99.9 %s\n",
			q[0].Round(time.Microsecond), q[1].Round(time.Microsecond), q[2].Round(time.Microsecond))
		fmt.Println("  (tail latencies include waits behind merge-cascade block builds)")
	}
}

// percentiles returns p50, p99, p99.9.
func percentiles(d []time.Duration) [3]time.Duration {
	cp := make([]time.Duration, len(d))
	copy(cp, d)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(cp)-1))
		return cp[i]
	}
	return [3]time.Duration{at(0.50), at(0.99), at(0.999)}
}
