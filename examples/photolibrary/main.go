// Photolibrary: the paper's motivating query — "which 10 photos you took
// between January 2010 and May 2011 are most similar to the one you just
// took?" (§1) — over a simulated personal photo library with real
// wall-clock timestamps.
//
// The example indexes ~30k photo embeddings spanning 2008–2024 (bursts
// around trips and events, like a real camera roll), then answers
// window-restricted similarity queries with MBI and cross-checks the
// results against the exact BSBF baseline.
//
//	go run ./examples/photolibrary
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	tknn "repro"
)

const (
	dim      = 96 // CNN-embedding-sized vectors
	numShots = 30000
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	fmt.Println("generating photo library (2008-2024, bursty shooting pattern)...")
	photos := generateLibrary(rng)

	mbi, err := tknn.NewMBI(tknn.MBIOptions{
		Dim:           dim,
		Metric:        tknn.Angular, // embeddings compare by cosine
		LeafSize:      2048,
		GraphDegree:   16,
		MaxCandidates: 64,
		Epsilon:       1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := tknn.NewBSBF(dim, tknn.Angular)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for _, p := range photos {
		if err := mbi.Add(p.embedding, p.takenAt.Unix()); err != nil {
			log.Fatal(err)
		}
		if err := exact.Add(p.embedding, p.takenAt.Unix()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d photos in %s (%d MBI blocks)\n\n",
		mbi.Len(), time.Since(start).Round(time.Millisecond), mbi.BlockCount())

	// The paper's example query, plus a few more windows.
	queries := []struct {
		name       string
		start, end time.Time
	}{
		{"Jan 2010 - May 2011", date(2010, 1, 1), date(2011, 5, 1)},
		{"the whole library", date(2008, 1, 1), date(2025, 1, 1)},
		{"summer 2019", date(2019, 6, 1), date(2019, 9, 1)},
		{"one week in 2022", date(2022, 3, 7), date(2022, 3, 14)},
	}
	probe := photos[len(photos)-1].embedding // "the one you just took"

	for _, q := range queries {
		query := tknn.Query{
			Vector: probe,
			K:      10,
			Start:  q.start.Unix(),
			End:    q.end.Unix(),
		}
		t0 := time.Now()
		got, err := mbi.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		mbiTime := time.Since(t0)

		t0 = time.Now()
		want, err := exact.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		exactTime := time.Since(t0)

		fmt.Printf("%-22s MBI %8s  exact %8s  recall %.2f  (%d matches)\n",
			q.name+":", mbiTime.Round(time.Microsecond), exactTime.Round(time.Microsecond),
			recall(got, want), len(got))
		for i, r := range got {
			if i == 3 {
				fmt.Printf("    ... %d more\n", len(got)-3)
				break
			}
			fmt.Printf("    photo %6d taken %s (dist %.4f)\n",
				r.ID, time.Unix(r.Time, 0).UTC().Format("2006-01-02"), r.Dist)
		}
	}
}

type photo struct {
	takenAt   time.Time
	embedding []float32
}

// generateLibrary simulates a camera roll: photos cluster into "scenes"
// (vacations, events) both visually and temporally.
func generateLibrary(rng *rand.Rand) []photo {
	// Visual scene prototypes: beaches, birthdays, screenshots, pets...
	scenes := make([][]float32, 40)
	for s := range scenes {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		scenes[s] = v
	}

	photos := make([]photo, 0, numShots)
	t := date(2008, 1, 1)
	endOfTime := date(2024, 6, 1)
	for len(photos) < numShots && t.Before(endOfTime) {
		// A burst: one scene, a handful to a few hundred shots. Shots in a
		// burst share a setting (the burst center), so they are closer to
		// one another than to the rest of their scene.
		scene := scenes[rng.Intn(len(scenes))]
		center := make([]float32, dim)
		for i := range center {
			center[i] = scene[i] + float32(rng.NormFloat64()*0.5)
		}
		burst := 5 + rng.Intn(200)
		for b := 0; b < burst && len(photos) < numShots; b++ {
			v := make([]float32, dim)
			for i := range v {
				v[i] = center[i] + float32(rng.NormFloat64()*0.5)
			}
			photos = append(photos, photo{takenAt: t, embedding: v})
			t = t.Add(time.Duration(5+rng.Intn(120)) * time.Second)
		}
		// Gap until the next burst: hours to a couple of weeks.
		t = t.Add(time.Duration(1+rng.Intn(900)) * time.Hour)
	}
	return photos
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// recall measures |got ∩ want| / |want| by distance threshold.
func recall(got, want []tknn.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	threshold := want[len(want)-1].Dist * 1.00001
	hits := 0
	for _, r := range got {
		if r.Dist <= threshold {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}
