// Satellite: the weather-satellite scenario that motivated the paper (the
// COMS/GK2A datasets — the paper's authors index satellite imagery for
// the Korea Meteorological Administration). Hourly image embeddings
// accumulate for years; forecasters look for historical hours whose sky
// state most resembles the current one, restricted to a season or a year.
//
// The example also demonstrates persistence: the index is saved to disk,
// reloaded, and verified to answer identically — the restart story a
// production deployment needs.
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	tknn "repro"
)

const (
	dim       = 128 // autoencoder embedding size used for COMS in the paper
	hoursSpan = 6 * 365 * 24
)

func main() {
	rng := rand.New(rand.NewSource(11))

	opts := tknn.MBIOptions{
		Dim:      dim,
		Metric:   tknn.Angular,
		LeafSize: 4096,
		Epsilon:  1.2,
	}
	ix, err := tknn.NewMBI(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ingesting 6 years of hourly satellite-image embeddings...")
	epoch := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var lastEmbedding []float32
	for h := 0; h < hoursSpan; h++ {
		ts := epoch.Add(time.Duration(h) * time.Hour)
		lastEmbedding = skyEmbedding(rng, ts)
		if err := ix.Add(lastEmbedding, ts.Unix()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d hours (%d blocks, height %d)\n\n",
		ix.Len(), ix.BlockCount(), ix.TreeHeight())

	// "Which past summer hours looked most like right now?"
	windows := []struct {
		name       string
		start, end time.Time
	}{
		{"summer 2020", time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC), time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)},
		{"all of 2021", time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)},
		{"2018-2023", epoch, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, w := range windows {
		res, err := ix.Search(tknn.Query{
			Vector: lastEmbedding, K: 5,
			Start: w.start.Unix(), End: w.end.Unix(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s nearest analog hours:\n", w.name+":")
		for _, r := range res {
			fmt.Printf("    %s  (dist %.4f)\n",
				time.Unix(r.Time, 0).UTC().Format("2006-01-02 15:04"), r.Dist)
		}
	}

	// Persistence round trip.
	path := filepath.Join(os.TempDir(), "satellite.mbi")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved index to %s (%.1f MB)\n", path, float64(info.Size())/1e6)

	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := tknn.LoadMBI(f, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	q := tknn.Query{Vector: lastEmbedding, K: 3, Start: windows[0].start.Unix(), End: windows[0].end.Unix()}
	a, err := ix.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	b, err := restored.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	agree := len(a) == len(b)
	for i := 0; agree && i < len(a); i++ {
		agree = a[i].ID == b[i].ID
	}
	fmt.Printf("restored index has %d vectors in %d blocks; summer-2020 query agreement: %v\n",
		restored.Len(), restored.BlockCount(), agree)
}

// skyEmbedding simulates an image autoencoder: the sky state blends a
// diurnal cycle, a seasonal cycle, and weather-system noise that drifts
// hour to hour.
var weatherState []float32

func skyEmbedding(rng *rand.Rand, ts time.Time) []float32 {
	if weatherState == nil {
		weatherState = make([]float32, dim)
	}
	// Weather drifts as a slow random walk.
	for i := range weatherState {
		weatherState[i] = 0.98*weatherState[i] + float32(rng.NormFloat64()*0.2)
	}
	hour := float64(ts.Hour())
	day := float64(ts.YearDay())
	v := make([]float32, dim)
	for i := range v {
		phase := float64(i)
		v[i] = weatherState[i] +
			float32(math.Sin(2*math.Pi*hour/24+phase)) + // diurnal
			float32(0.5*math.Cos(2*math.Pi*day/365+phase/3)) // seasonal
	}
	return v
}
