// Quickstart: build an MBI index, insert timestamped vectors, and run
// time-restricted k-nearest-neighbor queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	tknn "repro"
)

func main() {
	const (
		dim = 64
		n   = 20000
	)

	// An MBI index over 64-dimensional vectors compared by squared
	// Euclidean distance. LeafSize (S_L) bounds the brute-force tail:
	// vectors newer than the last sealed leaf are scanned exactly.
	ix, err := tknn.NewMBI(tknn.MBIOptions{
		Dim:      dim,
		Metric:   tknn.Euclidean,
		LeafSize: 1024,
		Tau:      0.5, // the paper's recommended block-selection threshold
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert vectors in timestamp order — the time-accumulating setting.
	// Here timestamps are just sequence numbers; any non-decreasing int64
	// (e.g. Unix seconds) works.
	rng := rand.New(rand.NewSource(42))
	vectors := make([][]float32, n)
	for i := range vectors {
		vectors[i] = randomPoint(rng, dim)
		if err := ix.Add(vectors[i], int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d vectors into %d blocks (tree height %d)\n",
		ix.Len(), ix.BlockCount(), ix.TreeHeight())

	// TkNN query: the 5 nearest neighbors of a probe among vectors with
	// timestamps in [5000, 15000).
	probe := vectors[7777]
	res, err := ix.Search(tknn.Query{Vector: probe, K: 5, Start: 5000, End: 15000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 nearest neighbors within window [5000, 15000):")
	for _, r := range res {
		fmt.Printf("  id=%5d  time=%5d  dist=%.4f\n", r.ID, r.Time, r.Dist)
	}

	// Narrow windows are just as cheap — MBI picks small blocks for them.
	res, err = ix.Search(tknn.Query{Vector: probe, K: 3, Start: 7700, End: 7800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3 nearest within the narrow window [7700, 7800):")
	for _, r := range res {
		fmt.Printf("  id=%5d  time=%5d  dist=%.4f\n", r.ID, r.Time, r.Dist)
	}
}

// randomPoint draws from a mixture of 8 Gaussian clusters, a miniature of
// what real embedding clouds look like.
var clusterCenters [][]float32

func randomPoint(rng *rand.Rand, dim int) []float32 {
	if clusterCenters == nil {
		for c := 0; c < 8; c++ {
			center := make([]float32, dim)
			for i := range center {
				center[i] = float32(rng.NormFloat64())
			}
			clusterCenters = append(clusterCenters, center)
		}
	}
	c := clusterCenters[rng.Intn(len(clusterCenters))]
	v := make([]float32, dim)
	for i := range v {
		v[i] = c[i] + float32(rng.NormFloat64()*0.5)
	}
	return v
}
